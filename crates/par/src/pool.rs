//! Work-stealing deques and flat data-parallel helpers.
//!
//! [`StealQueues`] is the scheduling core: one `Mutex<VecDeque<u32>>`
//! per worker. A worker pops its own deque LIFO (newly-unlocked tasks
//! are cache-hot — for the SCC client they read verdicts the worker
//! just published) and steals FIFO from the other end of victim deques,
//! so thieves take the oldest, least-contended work. Mutex-per-deque is
//! deliberately simple: tasks here are SCC fixpoints or fact-chunk
//! scans, microseconds at minimum, so a ~20ns uncontended lock per
//! push/pop is noise and the std-only policy rules out a lock-free
//! Chase–Lev deque's `unsafe`.
//!
//! **Parking.** An idle worker that finds every deque empty parks on a
//! condvar with a short timeout. Producers notify only when the sleeper
//! counter is non-zero, so the hot path (everyone busy) never touches
//! the parking lock. The timeout makes the protocol robust against the
//! benign push-vs-park race: a task pushed in the window between a
//! failed scan and the park is picked up at most one timeout later
//! rather than deadlocking.
//!
//! [`par_map`] / [`par_chunks`] are the flat counterpart for
//! dependency-free fan-out (the grounder's shard phases): an atomic
//! cursor hands out indices, results come back in task order, and
//! `n_threads <= 1` runs inline with zero spawns.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, LockResult, Mutex};
use std::time::Duration;

/// Process-wide scheduler totals, accumulated as runs finish (each
/// [`StealQueues`] flushes its per-worker counters on drop; aborts
/// count immediately). The pool is shared by every session in the
/// process, so these are global by construction — sessions export
/// deltas into their own metrics registries.
static TOTAL_STEALS: AtomicU64 = AtomicU64::new(0);
static TOTAL_PARKS: AtomicU64 = AtomicU64::new(0);
static TOTAL_ABORTS: AtomicU64 = AtomicU64::new(0);

/// A reading of the process-wide scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolTotals {
    /// Tasks taken from another worker's deque.
    pub steals: u64,
    /// Times an idle worker parked on the condvar.
    pub parks: u64,
    /// Runs killed via [`StealQueues::abort`] (panic or cancellation).
    pub aborts: u64,
}

/// Current process-wide scheduler totals (monotone).
pub fn pool_totals() -> PoolTotals {
    PoolTotals {
        steals: TOTAL_STEALS.load(Ordering::Relaxed),
        parks: TOTAL_PARKS.load(Ordering::Relaxed),
        aborts: TOTAL_ABORTS.load(Ordering::Relaxed),
    }
}

/// Per-worker scheduling counters for one run.
#[derive(Debug, Default)]
struct WorkerCounters {
    steals: AtomicU64,
    parks: AtomicU64,
}

/// How long an idle worker sleeps before re-scanning the deques; bounds
/// the staleness window of the lock-free sleeper check.
const PARK: Duration = Duration::from_micros(200);

/// Recovers a poisoned lock/wait result. Every mutex in this module
/// guards data that stays structurally valid across a panic (the deques
/// hold plain `u32`s and no critical section runs user code), so when a
/// panicking worker poisons one, the siblings take the inner guard and
/// carry on: the panic itself still propagates through the scope join /
/// abort flag, but it no longer cascades into every stealer.
fn relock<T>(r: LockResult<T>) -> T {
    r.unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Per-worker task deques with stealing and a completion-counting
/// termination protocol, shared by reference across scoped workers.
///
/// The queue holds `u32` task ids; what a task *means* is the caller's
/// business ([`crate::TaskDag`] maps them to DAG nodes). `total` is the
/// number of tasks that will ever complete: workers exit when the
/// completion counter reaches it, so every pushed task must eventually
/// be popped and [`StealQueues::complete_one`]d exactly once.
#[derive(Debug)]
pub struct StealQueues {
    local: Vec<Mutex<VecDeque<u32>>>,
    finished: AtomicUsize,
    total: usize,
    /// Set when a worker dies mid-run (task panic): the run can never
    /// reach `total`, so siblings must stop instead of parking forever.
    aborted: AtomicBool,
    sleepers: AtomicUsize,
    sleep: Mutex<()>,
    wake: Condvar,
    counters: Vec<WorkerCounters>,
}

impl StealQueues {
    /// Creates deques for `workers` workers and a run of `total` tasks.
    pub fn new(workers: usize, total: usize) -> Self {
        assert!(workers >= 1, "at least one worker");
        StealQueues {
            local: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            finished: AtomicUsize::new(0),
            total,
            aborted: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            counters: (0..workers).map(|_| WorkerCounters::default()).collect(),
        }
    }

    /// Per-worker `(steals, parks)` counts for this run so far.
    pub fn worker_counts(&self) -> Vec<(u64, u64)> {
        self.counters
            .iter()
            .map(|c| {
                (
                    c.steals.load(Ordering::Relaxed),
                    c.parks.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.local.len()
    }

    /// Enqueues `task` on `worker`'s deque and wakes sleepers if any.
    pub fn push(&self, worker: usize, task: u32) {
        relock(self.local[worker].lock()).push_back(task);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Taking the lock orders this notify against a concurrent
            // parker that incremented `sleepers` but has not begun
            // waiting yet (it must acquire the same lock first).
            let _g = relock(self.sleep.lock());
            self.wake.notify_all();
        }
    }

    /// Records one task completion; wakes everyone when it is the last
    /// so parked workers observe termination promptly.
    pub fn complete_one(&self) {
        if self.finished.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            let _g = relock(self.sleep.lock());
            self.wake.notify_all();
        }
    }

    /// Whether every task has completed.
    pub fn is_done(&self) -> bool {
        self.finished.load(Ordering::Acquire) >= self.total
    }

    /// Marks the run dead and wakes everyone **immediately**: no
    /// further tasks will be handed out, and parked workers do not wait
    /// out the `PARK` timeout (the notify pairs with the aborted
    /// re-check `next_task` performs under this lock before sleeping,
    /// which bounds cancellation latency by a lock handoff rather than
    /// 200µs). Called when a worker's task panicked — so the panic
    /// propagates out of the scope join instead of the siblings parking
    /// forever — and by cooperative cancellation
    /// ([`crate::TaskDag::run_governed`]).
    pub fn abort(&self) {
        if !self.aborted.swap(true, Ordering::SeqCst) {
            TOTAL_ABORTS.fetch_add(1, Ordering::Relaxed);
        }
        let _g = relock(self.sleep.lock());
        self.wake.notify_all();
    }

    /// Whether [`StealQueues::abort`] was called.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// The next task for `worker`: own deque (LIFO), then a steal sweep
    /// over the other deques (FIFO), parking between failed sweeps.
    /// Returns `None` once all `total` tasks have completed (or the run
    /// was aborted).
    pub fn next_task(&self, worker: usize) -> Option<u32> {
        loop {
            if self.is_aborted() {
                return None;
            }
            if let Some(t) = relock(self.local[worker].lock()).pop_back() {
                return Some(t);
            }
            let n = self.local.len();
            for k in 1..n {
                let victim = (worker + k) % n;
                if let Some(t) = relock(self.local[victim].lock()).pop_front() {
                    self.counters[worker].steals.fetch_add(1, Ordering::Relaxed);
                    return Some(t);
                }
            }
            if self.is_done() {
                return None;
            }
            self.counters[worker].parks.fetch_add(1, Ordering::Relaxed);
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            {
                let g = relock(self.sleep.lock());
                // Re-check under the lock: a producer that saw our
                // sleeper increment notifies while holding it, and
                // `abort` does the same — checking the flag here (not
                // just at loop top) means a cancel racing the park is
                // seen before we sleep, so cancellation latency is a
                // lock handoff, never a full `PARK` timeout.
                if !self.is_done() && !self.is_aborted() {
                    let _ = relock(self.wake.wait_timeout(g, PARK));
                }
            }
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

impl Drop for StealQueues {
    fn drop(&mut self) {
        let (mut steals, mut parks) = (0u64, 0u64);
        for c in &self.counters {
            steals += c.steals.load(Ordering::Relaxed);
            parks += c.parks.load(Ordering::Relaxed);
        }
        if steals > 0 {
            TOTAL_STEALS.fetch_add(steals, Ordering::Relaxed);
        }
        if parks > 0 {
            TOTAL_PARKS.fetch_add(parks, Ordering::Relaxed);
        }
    }
}

/// Runs `f(i)` for every `i < n_tasks` across `n_threads` workers and
/// returns the results **in index order**. `n_threads <= 1` (or a
/// single task) runs inline on the calling thread with no spawns.
///
/// Tasks are handed out through an atomic cursor, so imbalanced tasks
/// load-balance naturally; there is no stealing because there are no
/// dependencies to unlock mid-run.
pub fn par_map<R: Send>(n_threads: usize, n_tasks: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    if n_threads <= 1 || n_tasks <= 1 {
        return (0..n_tasks).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let workers = n_threads.min(n_tasks);
    let run = |_w: usize| {
        let mut out: Vec<(usize, R)> = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n_tasks {
                return out;
            }
            out.push((i, f(i)));
        }
    };
    let mut pairs: Vec<(usize, R)> = Vec::with_capacity(n_tasks);
    std::thread::scope(|s| {
        let handles: Vec<_> = (1..workers).map(|w| s.spawn(move || run(w))).collect();
        pairs.extend(run(0));
        for h in handles {
            // Re-raise a worker panic on the caller rather than a
            // generic expect: the payload (e.g. the injected-fault
            // marker) survives for catch_unwind-based recovery.
            pairs.extend(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
        }
    });
    pairs.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), n_tasks);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Splits `items` into roughly `chunks` contiguous runs and maps each
/// through `f(offset, slice)` in parallel, returning results in chunk
/// order. `offset` is the index of `slice[0]` within `items`, so chunk
/// results can reference absolute item positions deterministically.
pub fn par_chunks<T: Sync, R: Send>(
    n_threads: usize,
    items: &[T],
    chunks: usize,
    f: impl Fn(usize, &[T]) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    let chunks = chunks.clamp(1, n.max(1));
    let per = n.div_ceil(chunks);
    let bounds: Vec<(usize, usize)> = (0..chunks)
        .map(|c| (c * per, ((c + 1) * per).min(n)))
        .filter(|&(lo, hi)| lo < hi || n == 0)
        .collect();
    par_map(n_threads, bounds.len(), |c| {
        let (lo, hi) = bounds[c];
        f(lo, &items[lo..hi])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn par_map_covers_every_index_once_in_order() {
        for threads in [1, 2, 4, 7] {
            let hits: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
            let out = par_map(threads, 100, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
                i * i
            });
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        assert!(par_map(4, 0, |i| i).is_empty());
        assert_eq!(par_map(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_chunks_partitions_exactly() {
        let items: Vec<u32> = (0..997).collect();
        for threads in [1, 3, 8] {
            let sums = par_chunks(threads, &items, threads * 4, |off, chunk| {
                assert_eq!(chunk[0], items[off]);
                chunk.iter().map(|&x| u64::from(x)).sum::<u64>()
            });
            assert_eq!(
                sums.iter().sum::<u64>(),
                items.iter().map(|&x| u64::from(x)).sum::<u64>()
            );
        }
        let empty: Vec<u32> = Vec::new();
        assert_eq!(par_chunks(4, &empty, 4, |_, c| c.len()), vec![0]);
    }

    #[test]
    fn abort_returns_parked_workers() {
        // Workers parked on an un-completable run must come back as
        // soon as `abort` runs, not only via timeout expiry.
        let q = StealQueues::new(2, 1); // one task that never arrives
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            for w in 0..2 {
                let q = &q;
                s.spawn(move || assert_eq!(q.next_task(w), None));
            }
            std::thread::sleep(Duration::from_millis(2)); // let them park
            q.abort();
        });
        // Generous bound: CI-safe, still far under an accumulation of
        // PARK timeouts if the wakeup were lost.
        assert!(t0.elapsed() < Duration::from_millis(500));
        assert!(q.is_aborted());
    }

    #[test]
    fn scheduler_counters_observe_steals_and_flush_to_totals() {
        let before = pool_totals();
        {
            let total = 64usize;
            let q = StealQueues::new(3, total);
            for t in 0..total as u32 {
                q.push(0, t);
            }
            std::thread::scope(|s| {
                for w in 0..3 {
                    let q = &q;
                    s.spawn(move || {
                        while let Some(_t) = q.next_task(w) {
                            q.complete_one();
                        }
                    });
                }
            });
            let counts = q.worker_counts();
            assert_eq!(counts.len(), 3);
            // Workers 1 and 2 can only obtain tasks by stealing; worker 0
            // never needs to. At least the two non-owners' first tasks
            // were steals (they may also park, which is fine).
            assert_eq!(counts[0].0, 0);
        } // drop flushes into the process totals
          // Totals are process-global and other tests run concurrently,
          // so assert monotonicity only.
        let after = pool_totals();
        assert!(after.steals >= before.steals);
        assert!(after.parks >= before.parks);
    }

    #[test]
    fn abort_counts_once_in_totals() {
        let before = pool_totals().aborts;
        let q = StealQueues::new(1, 1);
        q.abort();
        q.abort();
        let after = pool_totals().aborts;
        assert!(after > before, "double abort must count exactly once");
    }

    #[test]
    fn steal_queues_drain_across_workers() {
        let total = 64usize;
        let q = StealQueues::new(3, total);
        // Load everything onto worker 0: the others must steal it all.
        for t in 0..total as u32 {
            q.push(0, t);
        }
        let seen: Vec<AtomicU32> = (0..total).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for w in 0..3 {
                let (q, seen) = (&q, &seen);
                s.spawn(move || {
                    while let Some(t) = q.next_task(w) {
                        seen[t as usize].fetch_add(1, Ordering::Relaxed);
                        q.complete_one();
                    }
                });
            }
        });
        assert!(seen.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert!(q.is_done());
    }
}
