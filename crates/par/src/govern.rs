//! Cooperative cancellation, deadlines, and resource budgets.
//!
//! A [`Guard`] is the engine-wide governance token: a shared cancel
//! flag, an optional wall-clock deadline, an optional approximate
//! memory budget, and (for deterministic fault injection) an optional
//! fuel counter that trips after a fixed number of checks. Every hot
//! loop in the workspace — grounder join rounds, fixpoint propagation,
//! query enumeration, the wavefront scheduler — carries a `Guard` and
//! polls it every [`TICK_INTERVAL`] work units via [`Guard::tick`].
//!
//! The design goal is that an **ungoverned** guard ([`Guard::none`])
//! costs one predictable branch per tick site: the inner state is an
//! `Option<Arc<_>>`, so the `None` case never touches shared memory,
//! never reads the clock, and adds no per-iteration atomics.
//!
//! Governed checks are still cheap: the cancel flag is a relaxed-ish
//! atomic load, the clock is read only on real checks (once per
//! `TICK_INTERVAL` units, not per unit), and the memory budget is
//! compared against caller-supplied byte counts at coarse boundaries
//! (per grounding round, per fixpoint pass) rather than per operation.
//!
//! Fuel exists so tests can interrupt *deterministically at every
//! phase*: a guard with `fuel = k` trips on the `k`-th check no matter
//! what the clock or scheduler does, and `panic_on_trip` turns that
//! trip into a panic to exercise unwind paths. Production guards never
//! set either.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many work units a hot loop performs between real guard checks.
/// A power of two so the tick test compiles to a mask.
pub const TICK_INTERVAL: u32 = 1024;

/// Why a governed operation stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterruptCause {
    /// The cancel flag was set (by an [`InterruptHandle`], another
    /// thread, or fuel exhaustion during fault injection).
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The approximate memory accounting exceeded the budget.
    MemoryBudget,
}

impl std::fmt::Display for InterruptCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterruptCause::Cancelled => write!(f, "cancelled"),
            InterruptCause::DeadlineExceeded => write!(f, "deadline exceeded"),
            InterruptCause::MemoryBudget => write!(f, "memory budget exceeded"),
        }
    }
}

#[derive(Debug)]
struct GuardInner {
    cancel: Arc<AtomicBool>,
    deadline: Option<Instant>,
    max_memory_bytes: Option<usize>,
    /// Remaining check allowance for deterministic fault injection;
    /// `u64::MAX` means unlimited.
    fuel: AtomicU64,
    /// When fuel runs out, panic instead of returning `Cancelled`
    /// (drives the panic-at-every-stage sweeps).
    panic_on_trip: bool,
}

/// A shareable cancellation/deadline/budget token. Cloning is cheap
/// (an `Arc` bump); all clones observe the same cancel flag.
///
/// `Guard::default()` / [`Guard::none`] is the ungoverned guard: every
/// check is an inlined `None` test and nothing ever trips.
#[derive(Debug, Clone, Default)]
pub struct Guard {
    inner: Option<Arc<GuardInner>>,
}

/// Message for the panic raised when a guard with `panic_on_trip` runs
/// out of fuel; the fault harness matches on it.
pub const FUEL_PANIC: &str = "governance fuel exhausted (injected panic)";

impl Guard {
    /// The ungoverned guard: never trips, costs one branch per check.
    pub const fn none() -> Self {
        Guard { inner: None }
    }

    /// Starts building a governed guard.
    pub fn builder() -> GuardBuilder {
        GuardBuilder::default()
    }

    /// Whether this guard can ever trip.
    pub fn is_governed(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets the cancel flag: the next check anywhere this guard (or a
    /// clone, or its [`InterruptHandle`]) is polled returns
    /// [`InterruptCause::Cancelled`]. No-op on an ungoverned guard.
    pub fn cancel(&self) {
        if let Some(g) = &self.inner {
            g.cancel.store(true, Ordering::SeqCst);
        }
    }

    /// Whether the cancel flag is set.
    pub fn is_cancelled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|g| g.cancel.load(Ordering::SeqCst))
    }

    /// A handle that can cancel this guard from any thread.
    pub fn interrupt_handle(&self) -> InterruptHandle {
        InterruptHandle {
            cancel: self
                .inner
                .as_ref()
                .map(|g| Arc::clone(&g.cancel))
                .unwrap_or_default(),
        }
    }

    /// Performs a real check: fuel, cancel flag, then deadline. Hot
    /// loops should prefer [`Guard::tick`], which amortizes this over
    /// [`TICK_INTERVAL`] work units.
    #[inline]
    pub fn check(&self) -> Result<(), InterruptCause> {
        match &self.inner {
            None => Ok(()),
            Some(g) => g.check(),
        }
    }

    /// Counts one unit of work against `counter` and runs a real check
    /// every [`TICK_INTERVAL`] units. The counter is caller-owned so
    /// each loop ticks at its own cadence without shared-cache traffic.
    #[inline]
    pub fn tick(&self, counter: &mut u32) -> Result<(), InterruptCause> {
        let Some(g) = &self.inner else {
            return Ok(());
        };
        *counter = counter.wrapping_add(1);
        if *counter & (TICK_INTERVAL - 1) == 0 {
            g.check()
        } else {
            Ok(())
        }
    }

    /// Checks `used_bytes` against the memory budget (if any), after a
    /// real [`Guard::check`]. Call at coarse boundaries where a current
    /// byte count is cheap to produce.
    pub fn check_memory(&self, used_bytes: usize) -> Result<(), InterruptCause> {
        let Some(g) = &self.inner else {
            return Ok(());
        };
        g.check()?;
        match g.max_memory_bytes {
            Some(max) if used_bytes > max => Err(InterruptCause::MemoryBudget),
            _ => Ok(()),
        }
    }

    /// The memory budget this guard enforces, if any.
    pub fn memory_budget(&self) -> Option<usize> {
        self.inner.as_ref().and_then(|g| g.max_memory_bytes)
    }

    /// Fuel remaining, if this guard meters fuel. Read at trip time it
    /// answers "how close was the budget" without a rerun.
    pub fn fuel_remaining(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .map(|g| g.fuel.load(Ordering::Relaxed))
            .filter(|&f| f != u64::MAX)
    }

    /// The wall-clock deadline this guard enforces, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|g| g.deadline)
    }
}

impl GuardInner {
    #[inline]
    fn check(&self) -> Result<(), InterruptCause> {
        if self.fuel.load(Ordering::Relaxed) != u64::MAX {
            let burned = self
                .fuel
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |f| f.checked_sub(1))
                .is_err();
            if burned {
                if self.panic_on_trip {
                    panic!("{FUEL_PANIC}");
                }
                return Err(InterruptCause::Cancelled);
            }
        }
        if self.cancel.load(Ordering::SeqCst) {
            return Err(InterruptCause::Cancelled);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(InterruptCause::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

/// Builder for a governed [`Guard`]. All limits are optional; a built
/// guard with none of them set still responds to [`Guard::cancel`].
#[derive(Debug, Default)]
pub struct GuardBuilder {
    cancel: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
    max_memory_bytes: Option<usize>,
    fuel: Option<u64>,
    panic_on_trip: bool,
}

impl GuardBuilder {
    /// Uses `flag` as the cancel flag, sharing it with other guards
    /// (a [`crate::govern::InterruptHandle`] built from any of them
    /// cancels all). Fresh flag if unset.
    pub fn cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Trips with [`InterruptCause::DeadlineExceeded`] once `deadline`
    /// passes.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Trips with [`InterruptCause::MemoryBudget`] when a
    /// [`Guard::check_memory`] call reports more than `bytes`.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.max_memory_bytes = Some(bytes);
        self
    }

    /// Fault injection: trips (as `Cancelled`) on check number
    /// `checks + 1`, deterministically.
    pub fn fuel(mut self, checks: u64) -> Self {
        self.fuel = Some(checks);
        self
    }

    /// Fault injection: panic with [`FUEL_PANIC`] instead of returning
    /// an error when fuel runs out.
    pub fn panic_on_trip(mut self) -> Self {
        self.panic_on_trip = true;
        self
    }

    /// Builds the governed guard.
    pub fn build(self) -> Guard {
        Guard {
            inner: Some(Arc::new(GuardInner {
                cancel: self.cancel.unwrap_or_default(),
                deadline: self.deadline,
                max_memory_bytes: self.max_memory_bytes,
                fuel: AtomicU64::new(self.fuel.unwrap_or(u64::MAX)),
                panic_on_trip: self.panic_on_trip,
            })),
        }
    }
}

/// Cancels an in-flight governed operation from any thread. Cloneable,
/// `Send + Sync`, and safe to hold across operations: the flag is
/// shared with every guard built from the same
/// [`GuardBuilder::cancel_flag`].
#[derive(Debug, Clone, Default)]
pub struct InterruptHandle {
    cancel: Arc<AtomicBool>,
}

impl InterruptHandle {
    /// A handle around an existing shared flag.
    pub fn from_flag(cancel: Arc<AtomicBool>) -> Self {
        InterruptHandle { cancel }
    }

    /// Requests cancellation: every guard sharing this flag trips at
    /// its next check.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested and not yet cleared.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }

    /// Clears the flag (the owner does this when an operation starts,
    /// so a stale cancel does not kill the next one).
    pub fn clear(&self) {
        self.cancel.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn ungoverned_never_trips() {
        let g = Guard::none();
        let mut c = 0u32;
        for _ in 0..10_000 {
            g.tick(&mut c).unwrap();
        }
        g.check().unwrap();
        g.check_memory(usize::MAX).unwrap();
        assert!(!g.is_governed());
        g.cancel(); // no-op
        assert!(!g.is_cancelled());
    }

    #[test]
    fn cancel_trips_all_clones() {
        let g = Guard::builder().build();
        let h = g.interrupt_handle();
        let g2 = g.clone();
        g.check().unwrap();
        h.cancel();
        assert_eq!(g.check(), Err(InterruptCause::Cancelled));
        assert_eq!(g2.check(), Err(InterruptCause::Cancelled));
        h.clear();
        g.check().unwrap();
    }

    #[test]
    fn deadline_trips() {
        let g = Guard::builder()
            .deadline(Instant::now() - Duration::from_millis(1))
            .build();
        assert_eq!(g.check(), Err(InterruptCause::DeadlineExceeded));
        let far = Guard::builder()
            .deadline(Instant::now() + Duration::from_secs(3600))
            .build();
        far.check().unwrap();
    }

    #[test]
    fn memory_budget_trips_only_over() {
        let g = Guard::builder().memory_budget(1000).build();
        g.check_memory(1000).unwrap();
        assert_eq!(g.check_memory(1001), Err(InterruptCause::MemoryBudget));
        assert_eq!(g.memory_budget(), Some(1000));
    }

    #[test]
    fn fuel_trips_deterministically() {
        let g = Guard::builder().fuel(3).build();
        g.check().unwrap();
        g.check().unwrap();
        g.check().unwrap();
        assert_eq!(g.check(), Err(InterruptCause::Cancelled));
        assert_eq!(g.check(), Err(InterruptCause::Cancelled));
    }

    #[test]
    fn tick_checks_every_interval() {
        let g = Guard::builder().fuel(1).build();
        let mut c = 0u32;
        // First TICK_INTERVAL-1 ticks burn no fuel...
        for _ in 0..TICK_INTERVAL - 1 {
            g.tick(&mut c).unwrap();
        }
        // ...tick INTERVAL burns the single unit, tick 2*INTERVAL trips.
        g.tick(&mut c).unwrap();
        for _ in 0..TICK_INTERVAL - 1 {
            g.tick(&mut c).unwrap();
        }
        assert_eq!(g.tick(&mut c), Err(InterruptCause::Cancelled));
    }

    #[test]
    fn fuel_panic_mode() {
        let g = Guard::builder().fuel(0).panic_on_trip().build();
        let r = std::panic::catch_unwind(|| g.check());
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("governance fuel exhausted"));
    }
}
