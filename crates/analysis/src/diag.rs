//! Diagnostics, lint identities, severities and the lint configuration.

use gsls_lang::{FxHashMap, Span};
use std::fmt;

/// How serious a reported diagnostic is. Ordered ascending so
/// `Ord::max` picks the worst and reports can rank by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: worth knowing, never blocks a commit.
    Warning,
    /// A violation; under a deny-level config it rejects the program.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// What to do about a lint: reject the program, report and continue,
/// or stay silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintLevel {
    /// Report as [`Severity::Error`]; session commits are rejected.
    Deny,
    /// Report as [`Severity::Warning`]; never rejects.
    Warn,
    /// Do not report (the pass is skipped when every lint it feeds is
    /// allowed).
    Allow,
}

impl LintLevel {
    /// The severity a diagnostic reported at this level carries
    /// (allowed lints produce no diagnostic at all).
    pub fn severity(self) -> Option<Severity> {
        match self {
            LintLevel::Deny => Some(Severity::Error),
            LintLevel::Warn => Some(Severity::Warning),
            LintLevel::Allow => None,
        }
    }
}

/// The individual lints of the analyzer, grouped by pass.
///
/// **Safety / range-restriction** (deny by default — these programs
/// misbehave or flounder): [`Lint::UnboundHeadVar`],
/// [`Lint::NegativeOnlyVar`], [`Lint::NonGroundFact`],
/// [`Lint::ArityConflict`].
///
/// **Stratification** (allow by default — the engine's purpose is
/// well-founded negation on unstratified programs):
/// [`Lint::Unstratified`].
///
/// **Reachability / dead code** (warn by default):
/// [`Lint::UnreachablePredicate`], [`Lint::NeverFiringRule`],
/// [`Lint::SingletonVar`].
///
/// **Cost** (warn by default): [`Lint::CartesianProduct`],
/// [`Lint::InstantiationBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// A rule head variable bound by no positive body literal: the rule
    /// is not range-restricted ("allowed", Lloyd 87) and is enumerated
    /// over the active domain instead of its joins.
    UnboundHeadVar,
    /// A variable occurring under negation but in no positive body
    /// literal — the floundering hazard: no computation rule can ever
    /// ground the negative literal by selecting earlier literals.
    NegativeOnlyVar,
    /// A fact (empty body) containing variables.
    NonGroundFact,
    /// A predicate used at two different arities (across the analyzed
    /// clauses or against the session's known predicates).
    ArityConflict,
    /// The program has a predicate-level cycle through negation; the
    /// diagnostic names a witness cycle (`p → not q → p`) and the
    /// offending rules, and distinguishes locally-stratified programs
    /// when a ground program is available.
    Unstratified,
    /// A predicate with no derivation path: no fact support and no
    /// rule whose positive prerequisites are derivable.
    UnreachablePredicate,
    /// A rule with a positive body literal whose predicate can never
    /// hold — the rule can never fire.
    NeverFiringRule,
    /// A named variable occurring exactly once in its clause (use `_`
    /// for deliberate don't-cares).
    SingletonVar,
    /// A rule body whose positive literals split into variable-disjoint
    /// groups: the join degenerates to a cartesian product.
    CartesianProduct,
    /// The estimated ground instantiation of a rule exceeds the
    /// configured budget ([`LintConfig::budget`]).
    InstantiationBudget,
}

impl Lint {
    /// Every lint, in reporting order.
    pub const ALL: [Lint; 10] = [
        Lint::UnboundHeadVar,
        Lint::NegativeOnlyVar,
        Lint::NonGroundFact,
        Lint::ArityConflict,
        Lint::Unstratified,
        Lint::UnreachablePredicate,
        Lint::NeverFiringRule,
        Lint::SingletonVar,
        Lint::CartesianProduct,
        Lint::InstantiationBudget,
    ];

    /// The lint's stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Lint::UnboundHeadVar => "unbound-head-var",
            Lint::NegativeOnlyVar => "negative-only-var",
            Lint::NonGroundFact => "non-ground-fact",
            Lint::ArityConflict => "arity-conflict",
            Lint::Unstratified => "unstratified",
            Lint::UnreachablePredicate => "unreachable-predicate",
            Lint::NeverFiringRule => "never-firing-rule",
            Lint::SingletonVar => "singleton-var",
            Lint::CartesianProduct => "cartesian-product",
            Lint::InstantiationBudget => "instantiation-budget",
        }
    }

    /// Parses a lint name (the inverse of [`Lint::name`]).
    pub fn from_name(name: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.name() == name)
    }

    /// Whether this is a safety/range-restriction lint (deny by
    /// default: see [`LintConfig::default`]).
    pub fn is_safety(self) -> bool {
        matches!(
            self,
            Lint::UnboundHeadVar
                | Lint::NegativeOnlyVar
                | Lint::NonGroundFact
                | Lint::ArityConflict
        )
    }

    /// The default level: deny safety, allow stratification (the
    /// engine exists to run unstratified programs), warn on the rest.
    pub fn default_level(self) -> LintLevel {
        if self.is_safety() {
            LintLevel::Deny
        } else if self == Lint::Unstratified {
            LintLevel::Allow
        } else {
            LintLevel::Warn
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-lint levels plus the cost budget: what the analyzer reports and
/// what a [`Severity::Error`] it carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    levels: FxHashMap<Lint, LintLevel>,
    /// Estimated-ground-instance threshold for
    /// [`Lint::InstantiationBudget`].
    pub budget: u64,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            levels: FxHashMap::default(),
            budget: 1_000_000,
        }
    }
}

impl LintConfig {
    /// The default configuration (per-lint [`Lint::default_level`]).
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Everything allowed: analysis reports nothing and every pass is
    /// skipped. The opt-out for deliberately non-allowed programs
    /// (active-domain enumeration, floundering demos).
    pub fn permissive() -> Self {
        let mut c = LintConfig::default();
        for l in Lint::ALL {
            c.levels.insert(l, LintLevel::Allow);
        }
        c
    }

    /// Everything enabled: safety lints deny, every other lint warns
    /// (including stratification).
    pub fn strict() -> Self {
        let mut c = LintConfig::default();
        for l in Lint::ALL {
            c.levels.insert(
                l,
                if l.is_safety() {
                    LintLevel::Deny
                } else {
                    LintLevel::Warn
                },
            );
        }
        c
    }

    /// The effective level of `lint`.
    pub fn level(&self, lint: Lint) -> LintLevel {
        self.levels
            .get(&lint)
            .copied()
            .unwrap_or_else(|| lint.default_level())
    }

    /// Sets the level of one lint (builder-style).
    pub fn set(mut self, lint: Lint, level: LintLevel) -> Self {
        self.levels.insert(lint, level);
        self
    }

    /// Sets the cost budget (builder-style).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Whether every listed lint is allowed (the owning pass can be
    /// skipped entirely).
    pub fn all_allowed(&self, lints: &[Lint]) -> bool {
        lints.iter().all(|&l| self.level(l) == LintLevel::Allow)
    }
}

/// One analyzer finding: which lint fired, how severe it is under the
/// active config, a rendered message, and the evidence — clause index,
/// source span (when the clause was parsed from text), predicate and a
/// witness (the cycle, variable or estimate that triggered it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The lint that fired.
    pub lint: Lint,
    /// Severity under the config the analyzer ran with.
    pub severity: Severity,
    /// Human-readable description (already rendered against the store).
    pub message: String,
    /// Index of the offending clause in the analyzed program, if the
    /// finding is clause-specific.
    pub clause: Option<usize>,
    /// Source position of the offending clause, when known.
    pub span: Option<Span>,
    /// The predicate at fault, rendered.
    pub pred: Option<String>,
    /// The witness: a cycle `p → not q → p`, a variable name, an
    /// estimate — whatever evidence triggered the lint.
    pub witness: Option<String>,
}

impl Diagnostic {
    /// Renders the diagnostic as a single human-readable line:
    /// `error[negative-only-var]: 3:1: …`.
    pub fn render(&self) -> String {
        let mut s = format!("{}[{}]: ", self.severity, self.lint);
        if let Some(span) = self.span {
            s.push_str(&format!("{span}: "));
        }
        s.push_str(&self.message);
        s
    }

    /// Renders the diagnostic as one JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"lint\":\"{}\"", self.lint));
        s.push_str(&format!(",\"severity\":\"{}\"", self.severity));
        s.push_str(&format!(",\"message\":\"{}\"", json_escape(&self.message)));
        if let Some(c) = self.clause {
            s.push_str(&format!(",\"clause\":{c}"));
        }
        if let Some(span) = self.span {
            s.push_str(&format!(",\"line\":{},\"col\":{}", span.line, span.col));
        }
        if let Some(p) = &self.pred {
            s.push_str(&format!(",\"pred\":\"{}\"", json_escape(p)));
        }
        if let Some(w) = &self.witness {
            s.push_str(&format!(",\"witness\":\"{}\"", json_escape(w)));
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The outcome of one analysis run: diagnostics ranked most severe
/// first (ties keep clause order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// The findings, severity-ranked.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Ranks and wraps raw findings.
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.clause.cmp(&b.clause)));
        LintReport { diagnostics }
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The deny-level findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The warn-level findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Renders every diagnostic, one line each.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for d in &self.diagnostics {
            s.push_str(&d.render());
            s.push('\n');
        }
        s
    }

    /// Renders the report as a JSON array of diagnostic objects.
    pub fn to_json(&self) -> String {
        let mut s = String::from("[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&d.to_json());
        }
        s.push(']');
        s
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ranked() {
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn lint_names_roundtrip() {
        for l in Lint::ALL {
            assert_eq!(Lint::from_name(l.name()), Some(l));
        }
        assert_eq!(Lint::from_name("no-such-lint"), None);
    }

    #[test]
    fn default_levels() {
        let c = LintConfig::default();
        assert_eq!(c.level(Lint::UnboundHeadVar), LintLevel::Deny);
        assert_eq!(c.level(Lint::NegativeOnlyVar), LintLevel::Deny);
        assert_eq!(c.level(Lint::Unstratified), LintLevel::Allow);
        assert_eq!(c.level(Lint::CartesianProduct), LintLevel::Warn);
        assert!(LintConfig::permissive().all_allowed(&Lint::ALL));
        assert_eq!(
            LintConfig::strict().level(Lint::Unstratified),
            LintLevel::Warn
        );
    }

    #[test]
    fn report_ranks_errors_first() {
        let warn = Diagnostic {
            lint: Lint::SingletonVar,
            severity: Severity::Warning,
            message: "w".into(),
            clause: Some(0),
            span: None,
            pred: None,
            witness: None,
        };
        let err = Diagnostic {
            lint: Lint::UnboundHeadVar,
            severity: Severity::Error,
            message: "e".into(),
            clause: Some(3),
            span: None,
            pred: None,
            witness: None,
        };
        let r = LintReport::new(vec![warn.clone(), err.clone()]);
        assert_eq!(r.diagnostics[0], err);
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.warnings().count(), 1);
        assert!(!r.is_clean());
        assert!(r.has_errors());
    }

    #[test]
    fn json_rendering_escapes() {
        let d = Diagnostic {
            lint: Lint::NonGroundFact,
            severity: Severity::Error,
            message: "fact \"p(X)\" has vars".into(),
            clause: Some(1),
            span: Some(Span { line: 2, col: 1 }),
            pred: Some("p".into()),
            witness: Some("X".into()),
        };
        let j = d.to_json();
        assert!(j.contains("\\\"p(X)\\\""), "{j}");
        assert!(j.contains("\"line\":2"), "{j}");
        assert!(d.render().starts_with("error[non-ground-fact]: 2:1:"));
    }
}
