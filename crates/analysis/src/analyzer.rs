//! The multi-pass analyzer over [`Program`]s.
//!
//! Three passes, each skipped outright when every lint it feeds is
//! allowed (commit-path analysis of a large fact batch costs one cheap
//! loop):
//!
//! 1. **per-clause** — safety/range-restriction (unbound head vars,
//!    negative-only vars, non-ground facts, arity conflicts), singleton
//!    variables, and the cost lints (cartesian products, instantiation
//!    budget);
//! 2. **stratification** — predicate-level recursion through negation,
//!    with a witness cycle and, when a ground program is supplied, the
//!    stratified / locally-stratified / general distinction;
//! 3. **reachability** — predicates with no derivation path and rules
//!    that can never fire.

use crate::diag::{Diagnostic, Lint, LintConfig, LintReport};
use gsls_ground::depgraph::{AtomDepGraph, DepGraph};
use gsls_ground::grounder::GroundProgram;
use gsls_lang::{Clause, FxHashMap, Pred, Program, Sign, Symbol, Term, TermId, TermStore, Var};

/// Context the analyzer runs under: the lint configuration plus what
/// the caller already knows about the outside world (a session's
/// committed predicates and fact cardinalities).
#[derive(Debug, Clone, Default)]
pub struct AnalyzerOpts {
    /// Which lints report, and at what level.
    pub config: LintConfig,
    /// Arities of predicates defined outside the analyzed program
    /// (e.g. already committed to a session). Used both to detect
    /// arity conflicts against them and as arity ground truth.
    pub known_arities: FxHashMap<Symbol, usize>,
    /// Known fact cardinalities per predicate (e.g. from a grounder's
    /// fact store): feeds the instantiation estimate and seeds the
    /// reachability analysis.
    pub cardinalities: FxHashMap<Pred, usize>,
    /// Size of the active domain (constant universe) for estimating
    /// residual-variable blowup; `0` means "derive from the program".
    pub domain_hint: usize,
}

impl AnalyzerOpts {
    /// Options with a given configuration and no outside knowledge.
    pub fn with_config(config: LintConfig) -> Self {
        AnalyzerOpts {
            config,
            ..AnalyzerOpts::default()
        }
    }
}

/// The lints produced by the per-clause pass.
const CLAUSE_LINTS: [Lint; 7] = [
    Lint::UnboundHeadVar,
    Lint::NegativeOnlyVar,
    Lint::NonGroundFact,
    Lint::ArityConflict,
    Lint::SingletonVar,
    Lint::CartesianProduct,
    Lint::InstantiationBudget,
];

/// Analyzes a whole program: all three passes.
pub fn analyze(store: &TermStore, program: &Program, opts: &AnalyzerOpts) -> LintReport {
    analyze_with_ground(store, program, None, opts)
}

/// Analyzes a whole program; when `ground` is supplied the
/// stratification diagnostic distinguishes locally-stratified programs
/// (no recursion through negation at the ground-atom level) from fully
/// general ones.
pub fn analyze_with_ground(
    store: &TermStore,
    program: &Program,
    ground: Option<&GroundProgram>,
    opts: &AnalyzerOpts,
) -> LintReport {
    let mut diags = Vec::new();
    clause_pass(store, program, 0, opts, &mut diags);
    strat_pass(store, program, ground, opts, &mut diags);
    reach_pass(store, program, opts, &mut diags);
    LintReport::new(diags)
}

/// Analyzes the clauses at index `first_new` and beyond: the
/// commit-path entry point. Only the per-clause pass runs — the batch
/// alone has no meaningful dependency or reachability structure (use
/// [`analyze`] on the merged program for that) — but arity conflicts
/// are still checked against both the earlier clauses and
/// [`AnalyzerOpts::known_arities`].
pub fn analyze_batch(
    store: &TermStore,
    program: &Program,
    first_new: usize,
    opts: &AnalyzerOpts,
) -> LintReport {
    let mut diags = Vec::new();
    clause_pass(store, program, first_new, opts, &mut diags);
    LintReport::new(diags)
}

/// Renders a predicate as `name/arity`.
fn pred_name(store: &TermStore, pred: Pred) -> String {
    format!("{}/{}", store.symbol_name(pred.sym), pred.arity)
}

/// Renders a witness cycle as `p → not q → p` (the sign of pair `i`
/// labels the edge from predicate `i` to predicate `i+1 mod len`).
pub fn render_cycle(store: &TermStore, cycle: &[(Pred, Sign)]) -> String {
    if cycle.is_empty() {
        return String::new();
    }
    let mut s = store.symbol_name(cycle[0].0.sym).to_string();
    for (i, &(_, sign)) in cycle.iter().enumerate() {
        let next = cycle[(i + 1) % cycle.len()].0;
        s.push_str(if sign == Sign::Neg {
            " → not "
        } else {
            " → "
        });
        s.push_str(store.symbol_name(next.sym));
    }
    s
}

// ---------------------------------------------------------------------
// Pass 1: per-clause safety, singleton and cost lints.
// ---------------------------------------------------------------------

/// Per-variable occurrence facts within one clause.
#[derive(Clone, Copy, Default)]
struct VarInfo {
    count: u32,
    in_head: bool,
    in_pos: bool,
    in_neg: bool,
}

/// Where a variable occurrence sits in the clause.
#[derive(Clone, Copy, PartialEq)]
enum Site {
    Head,
    Pos,
    Neg,
}

/// Walks every variable occurrence of a term (with multiplicity —
/// unlike `collect_vars`, which deduplicates).
fn walk_vars(store: &TermStore, t: TermId, f: &mut impl FnMut(Var)) {
    if store.is_ground(t) {
        return;
    }
    match store.term(t) {
        Term::Var(v) => f(*v),
        Term::App(_, args) => {
            for &a in args.iter() {
                walk_vars(store, a, f);
            }
        }
    }
}

fn clause_pass(
    store: &TermStore,
    program: &Program,
    first_new: usize,
    opts: &AnalyzerOpts,
    diags: &mut Vec<Diagnostic>,
) {
    let cfg = &opts.config;
    if cfg.all_allowed(&CLAUSE_LINTS) {
        return;
    }

    // First-use arity table: the session's committed predicates, then
    // the clauses before the analyzed range, then the range itself.
    let mut first_use: FxHashMap<Symbol, usize> = opts.known_arities.clone();
    for c in &program.clauses()[..first_new.min(program.len())] {
        first_use.entry(c.head.pred).or_insert(c.head.args.len());
        for l in &c.body {
            first_use.entry(l.atom.pred).or_insert(l.atom.args.len());
        }
    }

    // Lazily computed context for the cost estimate.
    let mut fact_counts: Option<FxHashMap<Pred, usize>> = None;
    let mut domain: Option<u64> = None;

    // Scratch reused across clauses.
    let mut infos: FxHashMap<Var, VarInfo> = FxHashMap::default();
    let mut order: Vec<Var> = Vec::new();

    for (idx, c) in program.clauses().iter().enumerate().skip(first_new) {
        let span = program.span(idx);
        let mut emit = |lint: Lint, msg: String, pred: Option<String>, witness: Option<String>| {
            if let Some(severity) = cfg.level(lint).severity() {
                diags.push(Diagnostic {
                    lint,
                    severity,
                    message: msg,
                    clause: Some(idx),
                    span,
                    pred,
                    witness,
                });
            }
        };

        // Arity conflicts: head first, then body literals in order.
        let head_pred = c.head.pred_id();
        let mut check_arity =
            |sym: Symbol,
             arity: usize,
             what: &str,
             emit: &mut dyn FnMut(Lint, String, Option<String>, Option<String>)| {
                match first_use.get(&sym) {
                    Some(&expected) if expected != arity => emit(
                        Lint::ArityConflict,
                        format!(
                            "predicate {} used with arity {arity} in {what} but with arity \
                         {expected} elsewhere",
                            store.symbol_name(sym)
                        ),
                        Some(format!("{}/{arity}", store.symbol_name(sym))),
                        Some(format!("expected /{expected}, found /{arity}")),
                    ),
                    Some(_) => {}
                    None => {
                        first_use.insert(sym, arity);
                    }
                }
            };
        let mut emit_dyn =
            |l: Lint, m: String, p: Option<String>, w: Option<String>| emit(l, m, p, w);
        check_arity(c.head.pred, c.head.args.len(), "a rule head", &mut emit_dyn);
        for l in &c.body {
            check_arity(
                l.atom.pred,
                l.atom.args.len(),
                "a body literal",
                &mut emit_dyn,
            );
        }

        // Fast path for ground facts — the bulk of any EDB-heavy batch.
        if c.is_fact() {
            if !c.head.is_ground(store) {
                emit(
                    Lint::NonGroundFact,
                    format!("fact {} contains variables", c.display(store)),
                    Some(pred_name(store, head_pred)),
                    None,
                );
            }
            continue;
        }
        if c.is_ground(store) {
            continue;
        }

        // Variable occurrence census with multiplicity.
        infos.clear();
        order.clear();
        {
            let visit =
                |v: Var, site: Site, infos: &mut FxHashMap<Var, VarInfo>, order: &mut Vec<Var>| {
                    let info = infos.entry(v).or_insert_with(|| {
                        order.push(v);
                        VarInfo::default()
                    });
                    info.count += 1;
                    match site {
                        Site::Head => info.in_head = true,
                        Site::Pos => info.in_pos = true,
                        Site::Neg => info.in_neg = true,
                    }
                };
            for &t in c.head.args.iter() {
                walk_vars(store, t, &mut |v| {
                    visit(v, Site::Head, &mut infos, &mut order)
                });
            }
            for l in &c.body {
                let site = if l.is_pos() { Site::Pos } else { Site::Neg };
                for &t in l.atom.args.iter() {
                    walk_vars(store, t, &mut |v| visit(v, site, &mut infos, &mut order));
                }
            }
        }

        let head = pred_name(store, head_pred);
        let mut residual = 0u32;
        for &v in &order {
            let info = infos[&v];
            let name = store.var_name(v);
            if !info.in_pos {
                residual += 1;
                if info.in_neg {
                    emit(
                        Lint::NegativeOnlyVar,
                        format!(
                            "variable {name} of the rule for {head} occurs only in negative \
                             literals: no computation rule can ground it, so resolution \
                             flounders (grounding falls back to the active domain)"
                        ),
                        Some(head.clone()),
                        Some(name.clone()),
                    );
                } else {
                    emit(
                        Lint::UnboundHeadVar,
                        format!(
                            "head variable {name} of the rule for {head} is not bound by any \
                             positive body literal (the rule is not range-restricted)"
                        ),
                        Some(head.clone()),
                        Some(name.clone()),
                    );
                }
            }
            if info.count == 1 && !name.starts_with('_') {
                emit(
                    Lint::SingletonVar,
                    format!(
                        "variable {name} occurs exactly once in the rule for {head}; \
                         prefix it with `_` if the singleton is deliberate"
                    ),
                    Some(head.clone()),
                    Some(name),
                );
            }
        }

        // Cost lints operate on the positive body literals.
        if cfg.level(Lint::CartesianProduct).severity().is_some() {
            let groups = join_components(store, c);
            if groups >= 2 {
                emit(
                    Lint::CartesianProduct,
                    format!(
                        "the positive body of the rule for {head} splits into {groups} \
                         variable-disjoint groups: grounding multiplies them as a \
                         cartesian product"
                    ),
                    Some(head.clone()),
                    Some(format!("{groups} disjoint groups")),
                );
            }
        }
        if cfg.level(Lint::InstantiationBudget).severity().is_some() {
            let counts = fact_counts.get_or_insert_with(|| fact_counts_of(store, program));
            let dom = *domain.get_or_insert_with(|| {
                if opts.domain_hint > 0 {
                    opts.domain_hint as u64
                } else {
                    program.constants(store).len().max(1) as u64
                }
            });
            if let Some(est) = estimate_instances(program, c, counts, opts, dom, residual) {
                if est > u128::from(cfg.budget) {
                    emit(
                        Lint::InstantiationBudget,
                        format!(
                            "the rule for {head} may ground to ≈{est} instances, over the \
                             budget of {}",
                            cfg.budget
                        ),
                        Some(head.clone()),
                        Some(format!("≈{est} instances")),
                    );
                }
            }
        }
    }
}

/// Number of variable-connected components among the var-containing
/// positive body literals of `c` (≥ 2 means a cartesian product).
fn join_components(store: &TermStore, c: &Clause) -> usize {
    // Union-find over the positive literals, merged through shared vars.
    let lits: Vec<Vec<Var>> = c
        .pos_body()
        .map(|l| {
            let mut vs = Vec::new();
            l.collect_vars(store, &mut vs);
            vs
        })
        .filter(|vs| !vs.is_empty())
        .collect();
    if lits.len() < 2 {
        return lits.len();
    }
    let mut parent: Vec<usize> = (0..lits.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut owner: FxHashMap<Var, usize> = FxHashMap::default();
    for (i, vs) in lits.iter().enumerate() {
        for &v in vs {
            match owner.get(&v) {
                Some(&j) => {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    parent[a] = b;
                }
                None => {
                    owner.insert(v, i);
                }
            }
        }
    }
    (0..lits.len())
        .map(|i| find(&mut parent, i))
        .collect::<gsls_lang::FxHashSet<_>>()
        .len()
}

/// Counts the ground facts per predicate in `program`.
fn fact_counts_of(store: &TermStore, program: &Program) -> FxHashMap<Pred, usize> {
    let mut counts: FxHashMap<Pred, usize> = FxHashMap::default();
    for c in program.clauses() {
        if c.is_fact() && c.head.is_ground(store) {
            *counts.entry(c.head.pred_id()).or_insert(0) += 1;
        }
    }
    counts
}

/// Predicted ground-instance count of an update batch — the session's
/// admission-control predictor. Sums the per-clause instantiation
/// estimates (the same arithmetic behind [`Lint::InstantiationBudget`])
/// over `program`'s clauses from `first_new` on: ground facts count 1,
/// rules multiply their positive-body cardinalities (from
/// `opts.cardinalities`, falling back to in-batch fact counts) times
/// `domain_hint` per positively-unbound variable. A clause whose
/// estimate is unknowable contributes 0 — a positive body literal over
/// a predicate with no facts, rules, or supplied cardinality grounds to
/// nothing. Saturating; never walks the ground program.
pub fn estimate_batch_instances(
    store: &TermStore,
    program: &Program,
    first_new: usize,
    opts: &AnalyzerOpts,
) -> u128 {
    let fact_counts = fact_counts_of(store, program);
    let domain = if opts.domain_hint > 0 {
        opts.domain_hint as u64
    } else {
        program.constants(store).len().max(1) as u64
    };
    let mut total: u128 = 0;
    for c in program.clauses().iter().skip(first_new) {
        if c.is_fact() {
            total = total.saturating_add(1);
            continue;
        }
        // Residual = variables not bound by any positive body literal
        // (they enumerate the active domain when grounded).
        let mut pos_vars = gsls_lang::FxHashSet::default();
        let mut collect = Vec::new();
        for l in c.pos_body() {
            l.collect_vars(store, &mut collect);
        }
        pos_vars.extend(collect.iter().copied());
        let mut all_vars = Vec::new();
        for &t in c.head.args.iter() {
            walk_vars(store, t, &mut |v| all_vars.push(v));
        }
        for l in &c.body {
            for &t in l.atom.args.iter() {
                walk_vars(store, t, &mut |v| all_vars.push(v));
            }
        }
        all_vars.sort_unstable();
        all_vars.dedup();
        let residual = all_vars.iter().filter(|v| !pos_vars.contains(v)).count() as u32;
        if let Some(est) = estimate_instances(program, c, &fact_counts, opts, domain, residual) {
            total = total.saturating_add(est);
        }
    }
    total
}

/// Estimates the number of ground instances of `c`: the product of the
/// cardinalities of its positive body predicates, times `domain` per
/// residual (positively unbound) variable. Returns `None` when any
/// cardinality is unknown — no lint is better than a made-up number.
fn estimate_instances(
    program: &Program,
    c: &Clause,
    fact_counts: &FxHashMap<Pred, usize>,
    opts: &AnalyzerOpts,
    domain: u64,
    residual: u32,
) -> Option<u128> {
    let mut est: u128 = 1;
    for l in c.pos_body() {
        let pred = l.atom.pred_id();
        let card = if let Some(&n) = opts.cardinalities.get(&pred) {
            n as u128
        } else if let Some(&n) = fact_counts.get(&pred) {
            n as u128
        } else if !program.clauses_for(pred).is_empty() {
            // IDB with rules but no facts: bounded by domain^arity.
            u128::from(domain).saturating_pow(pred.arity)
        } else {
            return None;
        };
        if card == 0 {
            return Some(0);
        }
        est = est.saturating_mul(card);
    }
    for _ in 0..residual {
        est = est.saturating_mul(u128::from(domain));
    }
    Some(est)
}

// ---------------------------------------------------------------------
// Pass 2: stratification diagnostics.
// ---------------------------------------------------------------------

fn strat_pass(
    store: &TermStore,
    program: &Program,
    ground: Option<&GroundProgram>,
    opts: &AnalyzerOpts,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(severity) = opts.config.level(Lint::Unstratified).severity() else {
        return;
    };
    let graph = DepGraph::from_program(program);
    let Some(cycle) = graph.negative_cycle_witness() else {
        return;
    };
    let witness = render_cycle(store, &cycle);

    // The offending rules: clauses whose head is on the cycle and whose
    // body mentions another cycle predicate.
    let on_cycle: gsls_lang::FxHashSet<Pred> = cycle.iter().map(|&(p, _)| p).collect();
    let offenders: Vec<usize> = program
        .clauses()
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            on_cycle.contains(&c.head.pred_id())
                && c.body.iter().any(|l| on_cycle.contains(&l.atom.pred_id()))
        })
        .map(|(i, _)| i)
        .collect();

    let class = match ground {
        Some(gp) if AtomDepGraph::from_ground(gp).is_locally_stratified() => {
            "locally stratified (negation-free recursion at the ground level), so its \
             well-founded model is total"
        }
        Some(_) => "not even locally stratified: its well-founded model may leave atoms undefined",
        None => "possibly locally stratified — ground the program to distinguish",
    };
    let rules = offenders
        .iter()
        .map(|i| format!("#{i}"))
        .collect::<Vec<_>>()
        .join(", ");
    diags.push(Diagnostic {
        lint: Lint::Unstratified,
        severity,
        message: format!(
            "the program recurses through negation (witness cycle {witness}; rules {rules}) \
             and is {class}"
        ),
        clause: offenders.first().copied(),
        span: offenders.first().and_then(|&i| program.span(i)),
        pred: cycle.first().map(|&(p, _)| pred_name(store, p)),
        witness: Some(witness),
    });
}

// ---------------------------------------------------------------------
// Pass 3: reachability and dead code.
// ---------------------------------------------------------------------

fn reach_pass(
    store: &TermStore,
    program: &Program,
    opts: &AnalyzerOpts,
    diags: &mut Vec<Diagnostic>,
) {
    let cfg = &opts.config;
    if cfg.all_allowed(&[Lint::UnreachablePredicate, Lint::NeverFiringRule]) {
        return;
    }

    // Least fixpoint of "supportable": a predicate with a fact (here or
    // in the caller's fact store), or a rule whose positive body
    // predicates are all supportable (rules with negative-only bodies
    // support their head vacuously).
    let mut supportable: gsls_lang::FxHashSet<Pred> = opts
        .cardinalities
        .iter()
        .filter(|&(_, &n)| n > 0)
        .map(|(&p, _)| p)
        .collect();
    let mut rules: Vec<&Clause> = Vec::new();
    for c in program.clauses() {
        if c.is_fact() {
            supportable.insert(c.head.pred_id());
        } else {
            rules.push(c);
        }
    }
    loop {
        let mut changed = false;
        for c in &rules {
            let head = c.head.pred_id();
            if !supportable.contains(&head)
                && c.pos_body()
                    .all(|l| supportable.contains(&l.atom.pred_id()))
            {
                supportable.insert(head);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Never-firing rules: a positive body literal with no support.
    if cfg.level(Lint::NeverFiringRule).severity().is_some() {
        for (idx, c) in program.clauses().iter().enumerate() {
            if c.is_fact() {
                continue;
            }
            if let Some(dead) = c
                .pos_body()
                .find(|l| !supportable.contains(&l.atom.pred_id()))
            {
                diags.push(Diagnostic {
                    lint: Lint::NeverFiringRule,
                    severity: cfg.level(Lint::NeverFiringRule).severity().unwrap(),
                    message: format!(
                        "the rule for {} can never fire: positive body literal {} has no \
                         derivation path",
                        pred_name(store, c.head.pred_id()),
                        dead.atom.display(store)
                    ),
                    clause: Some(idx),
                    span: program.span(idx),
                    pred: Some(pred_name(store, c.head.pred_id())),
                    witness: Some(pred_name(store, dead.atom.pred_id())),
                });
            }
        }
    }

    // Unreachable predicates: mentioned in a head or positive body
    // position, yet unsupportable. Predicates that only ever occur
    // under negation are exempt — `~absent(X)` is an idiom, not a bug.
    if cfg.level(Lint::UnreachablePredicate).severity().is_some() {
        let mut seen: gsls_lang::FxHashSet<Pred> = gsls_lang::FxHashSet::default();
        for (idx, c) in program.clauses().iter().enumerate() {
            let mut mention = |pred: Pred, idx: usize, diags: &mut Vec<Diagnostic>| {
                if !supportable.contains(&pred) && seen.insert(pred) {
                    diags.push(Diagnostic {
                        lint: Lint::UnreachablePredicate,
                        severity: cfg.level(Lint::UnreachablePredicate).severity().unwrap(),
                        message: format!(
                            "predicate {} has no derivation path: no facts, and no rule \
                             chain can establish it",
                            pred_name(store, pred)
                        ),
                        clause: Some(idx),
                        span: program.span(idx),
                        pred: Some(pred_name(store, pred)),
                        witness: None,
                    });
                }
            };
            mention(c.head.pred_id(), idx, diags);
            for l in c.pos_body() {
                mention(l.atom.pred_id(), idx, diags);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{LintLevel, Severity};
    use gsls_lang::parse_program;

    fn run(src: &str) -> (TermStore, LintReport) {
        run_with(src, &AnalyzerOpts::with_config(LintConfig::strict()))
    }

    fn run_with(src: &str, opts: &AnalyzerOpts) -> (TermStore, LintReport) {
        let mut store = TermStore::new();
        let prog = parse_program(&mut store, src).unwrap();
        let report = analyze(&store, &prog, opts);
        (store, report)
    }

    fn lints(report: &LintReport) -> Vec<Lint> {
        report.diagnostics.iter().map(|d| d.lint).collect()
    }

    #[test]
    fn clean_program_is_clean() {
        let (_, r) = run("win(X) :- move(X, Y), ~win(Y). move(a, b). move(b, a).");
        // strict() warns on unstratified — that's the only finding.
        assert_eq!(lints(&r), vec![Lint::Unstratified]);
        let (_, r) =
            run("e(X, Y) :- edge(X, Y). edge(a, b). edge(b, c). t(X) :- e(X, Y), ~e(Y, X).");
        assert!(
            r.diagnostics.iter().all(|d| d.lint == Lint::SingletonVar),
            "{}",
            r.render()
        );
    }

    #[test]
    fn unbound_head_var() {
        let (_, r) = run("p(X, Y) :- q(X). q(a).");
        assert!(lints(&r).contains(&Lint::UnboundHeadVar), "{}", r.render());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.lint == Lint::UnboundHeadVar)
            .unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.witness.as_deref(), Some("Y"));
        assert_eq!(d.clause, Some(0));
        assert!(d.span.is_some(), "parsed clause should carry a span");
    }

    #[test]
    fn negative_only_var() {
        let (_, r) = run("p(X) :- ~q(X). q(a).");
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.lint == Lint::NegativeOnlyVar)
            .unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.witness.as_deref(), Some("X"));
        // ...and NOT also an unbound-head-var for the same variable.
        assert!(!lints(&r).contains(&Lint::UnboundHeadVar));
    }

    #[test]
    fn non_ground_fact() {
        let (_, r) = run("p(X).");
        let d = &r.diagnostics[0];
        assert_eq!(d.lint, Lint::NonGroundFact);
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn arity_conflict_within_program() {
        let (_, r) = run("p(a). q(X) :- p(X, X).");
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.lint == Lint::ArityConflict)
            .unwrap();
        assert!(d.message.contains("arity 2"), "{}", d.message);
        assert_eq!(d.clause, Some(1));
    }

    #[test]
    fn arity_conflict_against_known() {
        let mut opts = AnalyzerOpts::with_config(LintConfig::strict());
        let mut store = TermStore::new();
        let p = store.intern_symbol("p");
        opts.known_arities.insert(p, 2);
        let prog = parse_program(&mut store, "p(a).").unwrap();
        let r = analyze(&store, &prog, &opts);
        assert!(lints(&r).contains(&Lint::ArityConflict), "{}", r.render());
    }

    #[test]
    fn unstratified_witness_named() {
        let (_, r) = run("win(X) :- move(X, Y), ~win(Y). move(a, b).");
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.lint == Lint::Unstratified)
            .unwrap();
        assert_eq!(d.witness.as_deref(), Some("win → not win"));
        assert!(d.message.contains("rules #0"), "{}", d.message);
        // Default config allows it entirely.
        let (_, r) = run_with(
            "win(X) :- move(X, Y), ~win(Y). move(a, b).",
            &AnalyzerOpts::default(),
        );
        assert!(!lints(&r).contains(&Lint::Unstratified));
    }

    #[test]
    fn stratified_program_has_no_cycle_diagnostic() {
        let (_, r) = run("p(X) :- q(X), ~r(X). q(a). r(b).");
        assert!(!lints(&r).contains(&Lint::Unstratified), "{}", r.render());
    }

    #[test]
    fn unreachable_predicate_and_never_firing_rule() {
        let (_, r) = run("p(X) :- ghost(X). q(a).");
        assert!(
            lints(&r).contains(&Lint::UnreachablePredicate),
            "{}",
            r.render()
        );
        assert!(lints(&r).contains(&Lint::NeverFiringRule), "{}", r.render());
        // ghost and p are both unreachable; q is fine.
        let unreachable: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.lint == Lint::UnreachablePredicate)
            .map(|d| d.pred.clone().unwrap())
            .collect();
        assert!(unreachable.contains(&"ghost/1".to_string()));
        assert!(unreachable.contains(&"p/1".to_string()));
        assert!(!unreachable.contains(&"q/1".to_string()));
    }

    #[test]
    fn negation_only_mention_is_not_unreachable() {
        let (_, r) = run("p(X) :- q(X), ~blocked(X). q(a).");
        assert!(
            !lints(&r).contains(&Lint::UnreachablePredicate),
            "~blocked(X) alone must not flag blocked: {}",
            r.render()
        );
    }

    #[test]
    fn negative_body_supports_head_vacuously() {
        // r is supportable through a rule with only a negative literal
        // over a supportable predicate.
        let (_, r) = run("r(a) :- ~q(a). q(a).");
        assert!(
            !lints(&r).contains(&Lint::UnreachablePredicate),
            "{}",
            r.render()
        );
        assert!(
            !lints(&r).contains(&Lint::NeverFiringRule),
            "{}",
            r.render()
        );
    }

    #[test]
    fn cardinalities_seed_reachability() {
        let mut store = TermStore::new();
        let prog = parse_program(&mut store, "p(X) :- edb(X).").unwrap();
        let edb = Pred::new(store.intern_symbol("edb"), 1);
        let mut opts = AnalyzerOpts::with_config(LintConfig::strict());
        opts.cardinalities.insert(edb, 10);
        let r = analyze(&store, &prog, &opts);
        assert!(
            !lints(&r).contains(&Lint::NeverFiringRule),
            "{}",
            r.render()
        );
    }

    #[test]
    fn singleton_var_warns_but_underscore_exempt() {
        let (_, r) = run("p(X) :- q(X, Y). q(a, b).");
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.lint == Lint::SingletonVar)
            .unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.witness.as_deref(), Some("Y"));
        let (_, r) = run("p(X) :- q(X, _). q(a, b).");
        assert!(!lints(&r).contains(&Lint::SingletonVar), "{}", r.render());
    }

    #[test]
    fn cartesian_product_detected() {
        let (_, r) = run("p(X, Y) :- q(X), r(Y). q(a). r(b).");
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.lint == Lint::CartesianProduct)
            .unwrap();
        assert!(d.message.contains("2 variable-disjoint"), "{}", d.message);
        // A connected join is fine.
        let (_, r) = run("p(X, Y) :- q(X, Z), r(Z, Y). q(a, b). r(b, c).");
        assert!(
            !lints(&r).contains(&Lint::CartesianProduct),
            "{}",
            r.render()
        );
    }

    #[test]
    fn instantiation_budget() {
        let mut src = String::from("p(X, Y) :- q(X), r(Y).\n");
        for i in 0..40 {
            src.push_str(&format!("q(a{i}). r(b{i}).\n"));
        }
        let opts = AnalyzerOpts {
            config: LintConfig::strict().with_budget(1000),
            ..AnalyzerOpts::default()
        };
        let (_, r) = run_with(&src, &opts);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.lint == Lint::InstantiationBudget)
            .unwrap();
        assert!(d.message.contains("1600"), "{}", d.message);
        // A generous budget keeps it quiet.
        let opts = AnalyzerOpts {
            config: LintConfig::strict().with_budget(1_000_000),
            ..AnalyzerOpts::default()
        };
        let (_, r) = run_with(&src, &opts);
        assert!(!lints(&r).contains(&Lint::InstantiationBudget));
    }

    #[test]
    fn batch_analysis_checks_only_new_clauses() {
        let mut store = TermStore::new();
        let prog = parse_program(&mut store, "p(X). q(a). q(b, b).").unwrap();
        // Clause 0 is outside the analyzed range: its non-ground fact is
        // not reported, but its arity is still learned (none conflict).
        let opts = AnalyzerOpts::default();
        let r = analyze_batch(&store, &prog, 1, &opts);
        assert_eq!(lints(&r), vec![Lint::ArityConflict], "{}", r.render());
        assert_eq!(r.diagnostics[0].clause, Some(2));
    }

    #[test]
    fn permissive_config_reports_nothing() {
        let (_, r) = run_with(
            "p(X) :- ~q(X). junk(X, X, Y). p(a, b) :- p(c).",
            &AnalyzerOpts::with_config(LintConfig::permissive()),
        );
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn report_is_severity_ranked() {
        let (_, r) = run("p(X) :- q(X, Y). p(Z) :- ~w(Z). q(a, b).");
        assert!(r.has_errors());
        let sevs: Vec<Severity> = r.diagnostics.iter().map(|d| d.severity).collect();
        let mut sorted = sevs.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(sevs, sorted, "errors must come first: {}", r.render());
    }

    #[test]
    fn level_overrides_apply() {
        let cfg = LintConfig::default().set(Lint::SingletonVar, LintLevel::Deny);
        let (_, r) = run_with("p(X) :- q(X, Y). q(a, b).", &AnalyzerOpts::with_config(cfg));
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.lint == Lint::SingletonVar)
            .unwrap();
        assert_eq!(d.severity, Severity::Error);
    }
}
