//! # gsls-analyze — static program analysis and lints
//!
//! A multi-pass static analyzer over [`gsls_lang::Program`]s producing
//! structured, severity-ranked [`Diagnostic`]s with source spans and
//! machine-readable (JSON) rendering. It is the gatekeeper in front of
//! the engines: programs that flounder, misbehave under grounding, or
//! blow up the instantiation are caught *before* they reach a session's
//! write-ahead log.
//!
//! ## Passes and lints
//!
//! 1. **Safety / range-restriction** — [`Lint::UnboundHeadVar`],
//!    [`Lint::NegativeOnlyVar`] (the floundering hazard),
//!    [`Lint::NonGroundFact`], [`Lint::ArityConflict`]. Deny by default.
//! 2. **Stratification** — [`Lint::Unstratified`] lifts the dependency
//!    analysis of `gsls_ground::depgraph` into a user-facing diagnostic
//!    naming a witness cycle (`p → not q → p`) and the offending rules,
//!    distinguishing stratified / locally stratified / fully general
//!    programs. Allow by default: well-founded negation on unstratified
//!    programs is the engine's purpose.
//! 3. **Reachability & dead code** — [`Lint::UnreachablePredicate`],
//!    [`Lint::NeverFiringRule`], [`Lint::SingletonVar`]. Warn by default.
//! 4. **Cost** — [`Lint::CartesianProduct`],
//!    [`Lint::InstantiationBudget`]. Warn by default.
//!
//! ## Example
//!
//! ```
//! use gsls_analyze::{analyze, AnalyzerOpts, Lint, LintConfig, Severity};
//! use gsls_lang::{parse_program, TermStore};
//!
//! let mut store = TermStore::new();
//! // X occurs only under negation: no computation rule can ever
//! // ground ~q(X), so resolution flounders.
//! let prog = parse_program(&mut store, "p(X) :- ~q(X). q(a).").unwrap();
//! let report = analyze(&store, &prog, &AnalyzerOpts::default());
//! assert!(report.has_errors());
//! let d = &report.diagnostics[0];
//! assert_eq!(d.lint, Lint::NegativeOnlyVar);
//! assert_eq!(d.severity, Severity::Error);
//! assert_eq!(d.span.unwrap().line, 1);
//!
//! // The same program is accepted under a permissive configuration.
//! let opts = AnalyzerOpts::with_config(LintConfig::permissive());
//! assert!(analyze(&store, &prog, &opts).is_clean());
//! ```

#![forbid(unsafe_code)]

pub mod analyzer;
pub mod diag;

pub use analyzer::{
    analyze, analyze_batch, analyze_with_ground, estimate_batch_instances, render_cycle,
    AnalyzerOpts,
};
pub use diag::{Diagnostic, Lint, LintConfig, LintLevel, LintReport, Severity};
