//! `gsls-serve` — the network server binary.
//!
//! ```text
//! gsls-serve [--addr HOST:PORT] [--data-dir DIR] [--max-conns N]
//!            [--readers N] [--queue-depth N] [--group-max N]
//!            [--idle-timeout-ms N] [--remote-admin]
//! ```
//!
//! Serves until a client sends `Shutdown` (see `gsls-client shutdown`),
//! then drains gracefully. With no `--data-dir` the sessions are
//! in-memory (nothing survives a restart). `Shutdown` is honored from
//! loopback peers only, unless `--remote-admin` opts in.

use gsls_serve::{Server, ServerConfig};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gsls-serve [--addr HOST:PORT] [--data-dir DIR] [--max-conns N]\n\
         \x20                 [--readers N] [--queue-depth N] [--group-max N]\n\
         \x20                 [--idle-timeout-ms N] [--remote-admin]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:4766".into(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Option<String> {
            match args.next() {
                Some(v) => Some(v),
                None => {
                    eprintln!("{name} needs a value");
                    None
                }
            }
        };
        match arg.as_str() {
            "--addr" => match take("--addr") {
                Some(v) => cfg.addr = v,
                None => return usage(),
            },
            "--data-dir" => match take("--data-dir") {
                Some(v) => cfg.data_dir = Some(v.into()),
                None => return usage(),
            },
            "--max-conns" => match take("--max-conns").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.max_conns = v,
                None => return usage(),
            },
            "--readers" => match take("--readers").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.readers = v,
                None => return usage(),
            },
            "--queue-depth" => match take("--queue-depth").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.queue_depth = v,
                None => return usage(),
            },
            "--group-max" => match take("--group-max").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.group_max = v,
                None => return usage(),
            },
            "--idle-timeout-ms" => match take("--idle-timeout-ms").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.idle_timeout = Duration::from_millis(v),
                None => return usage(),
            },
            "--remote-admin" => cfg.remote_admin = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}");
                return usage();
            }
        }
    }
    let mut server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gsls-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("gsls-serve listening on {}", server.addr());
    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("gsls-serve draining");
    server.shutdown();
    ExitCode::SUCCESS
}
