//! `gsls-client` — command-line client for gsls-serve.
//!
//! ```text
//! gsls-client [--addr HOST:PORT] [--session NAME] [--deadline-ms N] CMD [ARG]
//!
//!   ping
//!   commit RULES            commit program text (rules and facts)
//!   assert FACTS            assert ground facts, e.g. 'e(a, b). e(b, c).'
//!   retract FACTS           retract ground facts
//!   query GOAL              e.g. '?- win(X).'
//!   metrics                 Prometheus scrape of the session registry
//!   events                  drain the trace-event ring (JSON lines)
//!   checkpoint              force checkpoint + WAL rotation
//!   shutdown                ask the server to drain and stop
//! ```

use gsls_lang::GovernOpts;
use gsls_serve::Client;
use std::io::Write;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gsls-client [--addr HOST:PORT] [--session NAME] [--deadline-ms N] CMD [ARG]\n\
         \x20 CMD: ping | commit RULES | assert FACTS | retract FACTS | query GOAL |\n\
         \x20      metrics | events | checkpoint | shutdown"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:4766".to_string();
    let mut session: Option<String> = None;
    let mut opts = GovernOpts::default();
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => addr = v,
                None => return usage(),
            },
            "--session" => match args.next() {
                Some(v) => session = Some(v),
                None => return usage(),
            },
            "--deadline-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.deadline_ms = Some(v),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => rest.push(arg),
        }
    }
    let Some(cmd) = rest.first().cloned() else {
        return usage();
    };
    let arg = rest.get(1).cloned().unwrap_or_default();
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("gsls-client: connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(name) = &session {
        if let Err(e) = client.open(name) {
            eprintln!("gsls-client: open {name}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let outcome = match cmd.as_str() {
        "ping" => client.ping().map(|()| "pong".to_string()),
        "commit" => client
            .commit(&arg, "", "", opts)
            .map(|r| format!("committed at epoch {} ({:?})", r.epoch, r.stats)),
        "assert" => client
            .commit("", &arg, "", opts)
            .map(|r| format!("committed at epoch {} ({:?})", r.epoch, r.stats)),
        "retract" => client
            .commit("", "", &arg, opts)
            .map(|r| format!("committed at epoch {} ({:?})", r.epoch, r.stats)),
        "query" => client.query(&arg, opts).map(|r| {
            let mut out = r.truth.to_string();
            for a in &r.answers {
                out.push_str(&format!("\n{{{a}}}"));
            }
            for a in &r.undefined {
                out.push_str(&format!("\nundefined: {{{a}}}"));
            }
            if r.interrupted {
                out.push_str("\n(interrupted)");
            }
            out
        }),
        "metrics" => client.metrics(),
        "events" => client.events(),
        "checkpoint" => client.checkpoint(),
        "shutdown" => client.shutdown_server().map(|()| "draining".to_string()),
        _ => return usage(),
    };
    match outcome {
        Ok(text) => {
            // A downstream `| head`/`| grep -q` may close the pipe before
            // we finish writing; that is success, not a panic.
            let _ = writeln!(std::io::stdout(), "{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gsls-client: {e}");
            ExitCode::FAILURE
        }
    }
}
