//! Stream framing: `[len: u32 LE][crc: u32 LE][payload]`.
//!
//! The same record shape the WAL uses on disk (`gsls_durable::wal`),
//! reused on the socket so a torn or corrupted frame is detected the
//! same way in both places: a length prefix bounds the read, a CRC-32
//! over the payload rejects bit damage, and anything structurally
//! wrong surfaces as a typed [`FrameError`] — never a panic, never an
//! over-read.

use gsls_durable::crc32;
use std::io::{self, Read, Write};

/// Hard cap on a single frame's payload. A length prefix above this is
/// treated as corruption (or a hostile peer) rather than honored with
/// a giant allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed (including read timeouts, which
    /// surface as `WouldBlock`/`TimedOut` io errors).
    Io(io::Error),
    /// The peer closed the connection cleanly *between* frames.
    Closed,
    /// The peer closed (or the stream ended) in the middle of a frame.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// The payload's CRC-32 does not match the header.
    BadCrc,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame io error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds cap"),
            FrameError::BadCrc => write!(f, "frame crc mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Writes one frame: header then payload, no flush policy of its own
/// (callers flush once per response).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Reads one frame's payload. Distinguishes a clean close at a frame
/// boundary ([`FrameError::Closed`]) from a tear inside one
/// ([`FrameError::Truncated`]) so servers can tell a polite disconnect
/// from an ungraceful one.
///
/// A read timeout (`WouldBlock`/`TimedOut`) surfaces as
/// [`FrameError::Io`] and **abandons** any partial frame — use a
/// [`FrameReader`] when the socket has a read timeout and the frame
/// must survive it.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut fr = FrameReader::new();
    match fr.poll(r)? {
        Some(payload) => Ok(payload),
        None => Err(FrameError::Io(io::Error::new(
            io::ErrorKind::WouldBlock,
            "frame read timed out",
        ))),
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Incremental frame reader for sockets with a read timeout.
///
/// [`read_frame`] restarts from scratch on every call, so a timeout in
/// the middle of a frame — a >timeout gap between TCP segments of one
/// large request — would discard the bytes already consumed and desync
/// the stream. `FrameReader` instead keeps the partial header/payload
/// across calls: [`FrameReader::poll`] returns `Ok(None)` on a timeout
/// and resumes exactly where it stopped on the next call, so a slow but
/// well-behaved peer is never desynced. [`FrameReader::consumed`] lets
/// callers distinguish a genuinely idle connection (no bytes of any
/// frame yet) from a slow in-progress transfer.
#[derive(Debug, Default)]
pub struct FrameReader {
    header: [u8; 8],
    hgot: usize,
    /// Allocated once the header is complete; length = payload length.
    payload: Vec<u8>,
    pgot: usize,
    have_header: bool,
}

impl FrameReader {
    /// A reader positioned between frames.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Bytes of the in-progress frame consumed so far (0 when the
    /// reader sits between frames).
    pub fn consumed(&self) -> usize {
        self.hgot + self.pgot
    }

    /// Advances the frame as far as the stream allows. Returns
    /// `Ok(Some(payload))` once a full frame is available,
    /// `Ok(None)` when the read timed out (`WouldBlock`/`TimedOut`) —
    /// partial progress is kept and the next call resumes it — and
    /// `Err` for everything else ([`FrameError`] semantics as in
    /// [`read_frame`]).
    pub fn poll(&mut self, r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
        while self.hgot < self.header.len() {
            match r.read(&mut self.header[self.hgot..]) {
                Ok(0) => {
                    return Err(if self.hgot == 0 {
                        FrameError::Closed
                    } else {
                        FrameError::Truncated
                    })
                }
                Ok(n) => self.hgot += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if is_timeout(&e) => return Ok(None),
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        if !self.have_header {
            let len = u32::from_le_bytes(self.header[..4].try_into().unwrap()) as usize;
            if len > MAX_FRAME {
                return Err(FrameError::TooLarge(len));
            }
            self.payload = vec![0u8; len];
            self.pgot = 0;
            self.have_header = true;
        }
        while self.pgot < self.payload.len() {
            match r.read(&mut self.payload[self.pgot..]) {
                Ok(0) => return Err(FrameError::Truncated),
                Ok(n) => self.pgot += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if is_timeout(&e) => return Ok(None),
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        let crc = u32::from_le_bytes(self.header[4..].try_into().unwrap());
        let payload = std::mem::take(&mut self.payload);
        self.hgot = 0;
        self.pgot = 0;
        self.have_header = false;
        if crc32(&payload) != crc {
            return Err(FrameError::BadCrc);
        }
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xffu8; 300]).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), vec![0xffu8; 300]);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    /// Yields the framed bytes in tiny chunks with a simulated read
    /// timeout between every chunk — the pathological slow peer.
    struct Trickle<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
        /// Alternates: timeout, then data, then timeout, ...
        ready: bool,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"));
            }
            self.ready = false;
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_resumes_across_timeouts() {
        let payload: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        write_frame(&mut buf, b"second").unwrap();
        // One byte per read, a timeout before every byte: the reader
        // must keep its partial header/payload across every Ok(None).
        let mut r = Trickle {
            data: &buf,
            pos: 0,
            chunk: 1,
            ready: false,
        };
        let mut fr = FrameReader::new();
        let mut frames = Vec::new();
        let mut timeouts = 0usize;
        let mut last_consumed = 0usize;
        while frames.len() < 2 {
            match fr.poll(&mut r).unwrap() {
                Some(p) => {
                    assert_eq!(fr.consumed(), 0, "reader must reset between frames");
                    last_consumed = 0;
                    frames.push(p);
                }
                None => {
                    timeouts += 1;
                    // Progress is monotone within a frame and visible to
                    // the caller (this is what feeds the idle clock).
                    assert!(fr.consumed() >= last_consumed);
                    last_consumed = fr.consumed();
                }
            }
        }
        assert_eq!(frames[0], payload);
        assert_eq!(frames[1], b"second");
        assert!(
            timeouts > buf.len() / 2,
            "trickle should have timed out often"
        );
        // And the plain read_frame wrapper surfaces a timeout as Io.
        let mut r = Trickle {
            data: &buf,
            pos: 0,
            chunk: 1,
            ready: false,
        };
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }

    #[test]
    fn tears_and_flips_are_typed_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        // Every proper prefix is a tear (or, at 0 bytes, a clean close).
        for cut in 1..buf.len() {
            let mut r = &buf[..cut];
            assert!(
                matches!(read_frame(&mut r), Err(FrameError::Truncated)),
                "cut at {cut}"
            );
        }
        // A flipped payload bit is a CRC mismatch.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(read_frame(&mut &bad[..]), Err(FrameError::BadCrc)));
        // A hostile length prefix is rejected before allocating.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &huge[..]),
            Err(FrameError::TooLarge(_))
        ));
    }
}
