//! Stream framing: `[len: u32 LE][crc: u32 LE][payload]`.
//!
//! The same record shape the WAL uses on disk (`gsls_durable::wal`),
//! reused on the socket so a torn or corrupted frame is detected the
//! same way in both places: a length prefix bounds the read, a CRC-32
//! over the payload rejects bit damage, and anything structurally
//! wrong surfaces as a typed [`FrameError`] — never a panic, never an
//! over-read.

use gsls_durable::crc32;
use std::io::{self, Read, Write};

/// Hard cap on a single frame's payload. A length prefix above this is
/// treated as corruption (or a hostile peer) rather than honored with
/// a giant allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed (including read timeouts, which
    /// surface as `WouldBlock`/`TimedOut` io errors).
    Io(io::Error),
    /// The peer closed the connection cleanly *between* frames.
    Closed,
    /// The peer closed (or the stream ended) in the middle of a frame.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// The payload's CRC-32 does not match the header.
    BadCrc,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame io error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds cap"),
            FrameError::BadCrc => write!(f, "frame crc mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Writes one frame: header then payload, no flush policy of its own
/// (callers flush once per response).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Reads one frame's payload. Distinguishes a clean close at a frame
/// boundary ([`FrameError::Closed`]) from a tear inside one
/// ([`FrameError::Truncated`]) so servers can tell a polite disconnect
/// from an ungraceful one.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 8];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    if crc32(&payload) != crc {
        return Err(FrameError::BadCrc);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xffu8; 300]).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), vec![0xffu8; 300]);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn tears_and_flips_are_typed_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        // Every proper prefix is a tear (or, at 0 bytes, a clean close).
        for cut in 1..buf.len() {
            let mut r = &buf[..cut];
            assert!(
                matches!(read_frame(&mut r), Err(FrameError::Truncated)),
                "cut at {cut}"
            );
        }
        // A flipped payload bit is a CRC mismatch.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(read_frame(&mut &bad[..]), Err(FrameError::BadCrc)));
        // A hostile length prefix is rejected before allocating.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &huge[..]),
            Err(FrameError::TooLarge(_))
        ));
    }
}
