//! The server: thread-per-connection front end, one writer thread per
//! session draining a bounded commit queue with **group commit**, and a
//! shared reader pool running queries on `Arc`'d snapshots.
//!
//! ## Threads and ownership
//!
//! * The **accept thread** owns the listener (nonblocking, ~10ms poll
//!   so shutdown is responsive), enforces the connection cap, and
//!   spawns one thread per accepted connection.
//! * Each **connection thread** owns its socket. It reads one frame,
//!   routes on [`peek_request_kind`] *without* decoding the payload,
//!   and answers reads itself (metrics/events from cloned [`Obs`]
//!   handles) or forwards work: commits and checkpoints to the
//!   session's writer, queries to the reader pool. Replies come back
//!   over a per-request rendezvous channel.
//! * Each session's **writer thread** exclusively owns its
//!   [`Session`]. It blocks on the commit queue, then drains whatever
//!   else is queued (up to `group_max`) and commits the contiguous run
//!   as one group: every batch journaled unsynced, applied, and one
//!   covering fsync at the end ([`Session::commit_group`]). Replies are
//!   sent only **after** that fsync — the group-commit ack contract —
//!   and each waiting client gets its own typed reply (a batch that
//!   trips its deadline gets `Error{kind: Interrupted}` while the rest
//!   of the group commits).
//! * The **reader pool** (default [`gsls_par::threads`] threads)
//!   executes queries via [`Snapshot::prepare`] on a clone of the
//!   session's latest snapshot — compilation and evaluation are fully
//!   read-only, so readers never block the writer and vice versa.
//!
//! ## Failure model
//!
//! A client disconnecting mid-request can never poison a session: its
//! frame either never fully arrived (the connection thread drops it on
//! the floor) or its job is already queued, in which case the writer
//! commits it normally and the reply send fails harmlessly. Frame-level
//! damage (bad CRC, oversized length, torn write) is answered with a
//! protocol error where a reply is still possible and otherwise just
//! closes the socket. A merely *slow* peer is neither of those:
//! [`FrameReader`] keeps partially-read frames across the read-timeout
//! poll, so a >100ms gap between TCP segments inside one frame resumes
//! where it stopped (and counts as activity for the idle clock) instead
//! of desyncing the stream.
//!
//! If a group's covering fsync fails, no waiter is acked (every one
//! gets a typed error), the session is poisoned by
//! [`Session::commit_group`] — its in-memory state has diverged from
//! the WAL — and the published snapshot is left at the last acked
//! state, so readers never observe writes whose owners were told the
//! commit failed.
//!
//! ## Admin surface
//!
//! [`Request::Shutdown`] is honored only from loopback peers unless
//! [`ServerConfig::remote_admin`] opts in: a server bound on a routable
//! interface must not let any connecting peer put it into drain. The
//! metrics/events scrape is not gated — do not bind a server holding
//! sensitive data on an untrusted network.

use crate::frame::{write_frame, FrameError, FrameReader};
use gsls_core::{CommitOpts, Guard, Session, SessionError, Snapshot, UpdateBatch};
use gsls_lang::{
    decode_request, encode_response, peek_request_kind, Atom, Clause, CommitNumbers, ErrorKind,
    GovernOpts, Request, RequestKind, Response, TermStore, TruthTag,
};
use gsls_obs::{render_prometheus, Obs};
use gsls_wfs::Truth;
use std::collections::HashMap;
use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a connection may sit idle (no complete request) before the
/// server closes it.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Socket poll granularity: how quickly blocked reads notice shutdown
/// and the idle clock.
const POLL: Duration = Duration::from_millis(100);

/// Accept-loop poll granularity.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Cap on rendered answers per query response, keeping replies under
/// the frame size limit; enumeration stops at the cap (use governance
/// budgets for finer control).
pub const MAX_ANSWERS: usize = 65_536;

/// Server tuning knobs. `Default` is sized for tests and small
/// deployments; the bins expose each field as a flag.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:0"` (port 0 = ephemeral).
    pub addr: String,
    /// Root directory for durable sessions (one subdirectory per
    /// session name). `None` serves in-memory sessions: same engine,
    /// no WAL, nothing survives a restart.
    pub data_dir: Option<PathBuf>,
    /// Maximum concurrent connections; excess accepts are answered
    /// with `Error{kind: Busy}` and closed.
    pub max_conns: usize,
    /// Idle timeout per connection.
    pub idle_timeout: Duration,
    /// Reader-pool size; 0 means [`gsls_par::threads`].
    pub readers: usize,
    /// Bounded depth of each session's commit queue; senders block
    /// when it is full (backpressure, not rejection).
    pub queue_depth: usize,
    /// Maximum batches committed as one group (one fsync).
    pub group_max: usize,
    /// Honor admin requests ([`Request::Shutdown`]) from non-loopback
    /// peers. Off by default: when the server is bound on a routable
    /// interface, any peer that can connect could otherwise put it
    /// into drain.
    pub remote_admin: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            data_dir: None,
            max_conns: 64,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            readers: 0,
            queue_depth: 64,
            group_max: 32,
            remote_admin: false,
        }
    }
}

/// A work item for a session's writer thread.
enum Job {
    /// A raw, *undecoded* commit frame: the writer decodes it with
    /// `&mut` access to the session's term store.
    Commit {
        payload: Vec<u8>,
        received: Instant,
        reply: mpsc::SyncSender<Response>,
    },
    /// Forced checkpoint + WAL rotation.
    Checkpoint { reply: mpsc::SyncSender<Response> },
}

/// A query for the reader pool.
struct QueryJob {
    svc: Arc<SessionSvc>,
    goal: String,
    opts: GovernOpts,
    received: Instant,
    reply: mpsc::SyncSender<Response>,
}

/// Per-session serving state shared between connection threads, the
/// session's writer, and the reader pool.
struct SessionSvc {
    name: String,
    /// Commit-queue sender; `None` once shutdown has begun.
    tx: Mutex<Option<mpsc::SyncSender<Job>>>,
    /// The latest committed snapshot, refreshed by the writer after
    /// every group. Readers clone it out (an `Arc` bump) and run on
    /// the clone, so the lock is held only for the clone.
    snap: Mutex<Snapshot>,
    /// The session's observability bundle (shared storage).
    obs: Obs,
    writer: Mutex<Option<JoinHandle<()>>>,
}

/// A sessions-map entry: live, or still opening. Opening a durable
/// session can mean a full WAL replay (seconds), which must not run
/// under the map lock — binders of *other* sessions would stall on it.
/// The first binder claims the name with an [`OpenSlot`], opens with
/// the map unlocked, and publishes the verdict; concurrent binders of
/// the *same* name wait on the slot.
enum SessionEntry {
    Ready(Arc<SessionSvc>),
    Opening(Arc<OpenSlot>),
}

/// Rendezvous for concurrent binders of one still-opening session.
struct OpenSlot {
    done: Mutex<Option<Result<Arc<SessionSvc>, Response>>>,
    cv: Condvar,
}

struct Shared {
    cfg: ServerConfig,
    shutdown: AtomicBool,
    conns: AtomicUsize,
    sessions: Mutex<HashMap<String, SessionEntry>>,
    /// Reader-pool sender; `None` once shutdown has begun.
    pool_tx: Mutex<Option<mpsc::Sender<QueryJob>>>,
}

/// A running server. Dropping it shuts it down (graceful drain).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    readers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving. Returns once the listener is live;
    /// `addr()` reports the actual bound address (useful with port 0).
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let readers = if cfg.readers == 0 {
            gsls_par::threads()
        } else {
            cfg.readers
        };
        let (pool_tx, pool_rx) = mpsc::channel::<QueryJob>();
        let pool_rx = Arc::new(Mutex::new(pool_rx));
        let shared = Arc::new(Shared {
            cfg,
            shutdown: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            sessions: Mutex::new(HashMap::new()),
            pool_tx: Mutex::new(Some(pool_tx)),
        });
        let mut reader_handles = Vec::with_capacity(readers);
        for i in 0..readers {
            let rx = pool_rx.clone();
            reader_handles.push(
                std::thread::Builder::new()
                    .name(format!("gsls-reader-{i}"))
                    .spawn(move || reader_loop(rx))?,
            );
        }
        let accept_shared = shared.clone();
        let accept = std::thread::Builder::new()
            .name("gsls-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            readers: reader_handles,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a client has requested shutdown ([`Request::Shutdown`]).
    /// The owner of the `Server` is expected to poll this and call
    /// [`Server::shutdown`] — the request only raises the flag.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Graceful drain: stop accepting, let in-flight requests finish,
    /// close connections, flush every session's writer (group-commit
    /// queue fully drained and fsync'd), and join all threads.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Connections are gone; drop the reader pool and writers.
        *self.shared.pool_tx.lock().unwrap() = None;
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
        let svcs: Vec<Arc<SessionSvc>> = self
            .shared
            .sessions
            .lock()
            .unwrap()
            .drain()
            .filter_map(|(_, e)| match e {
                SessionEntry::Ready(s) => Some(s),
                // Opens run on connection threads, which were all
                // joined above — an Opening entry here is unreachable,
                // but dropping it is always safe (no writer yet).
                SessionEntry::Opening(_) => None,
            })
            .collect();
        for svc in svcs {
            *svc.tx.lock().unwrap() = None;
            if let Some(h) = svc.writer.lock().unwrap().take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Session names become directory names under `data_dir`; restrict
/// them so a hostile name cannot traverse.
fn valid_session_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
}

fn err(kind: ErrorKind, message: impl Into<String>) -> Response {
    Response::Error {
        kind,
        message: message.into(),
    }
}

/// Maps a [`SessionError`] onto its wire error class.
fn session_err(e: &SessionError) -> Response {
    let kind = match e {
        SessionError::Parse(_) => ErrorKind::Parse,
        SessionError::Rejected(_)
        | SessionError::NotFunctionFree
        | SessionError::NotAFact(_)
        | SessionError::Grounding(_)
        | SessionError::NestedTransaction => ErrorKind::Rejected,
        SessionError::Interrupted { .. } => ErrorKind::Interrupted,
        SessionError::Poisoned => ErrorKind::Poisoned,
        SessionError::Unsupported(_) => ErrorKind::Unsupported,
        SessionError::Durable(_) => ErrorKind::Internal,
    };
    err(kind, e.to_string())
}

fn commit_opts(o: &GovernOpts, received: Instant) -> CommitOpts {
    CommitOpts {
        deadline: o.deadline_ms.map(|ms| received + Duration::from_millis(ms)),
        max_clauses: o.max_clauses.map(|n| n as usize),
        max_memory_bytes: o.max_memory_bytes.map(|n| n as usize),
        fuel: o.fuel,
        panic_on_fuel: false,
    }
}

fn query_guard(o: &GovernOpts, received: Instant) -> Guard {
    let mut b = Guard::builder();
    if let Some(ms) = o.deadline_ms {
        b = b.deadline(received + Duration::from_millis(ms));
    }
    if let Some(f) = o.fuel {
        b = b.fuel(f);
    }
    b.build()
}

// ---------------------------------------------------------------------
// Accept + connection threads
// ---------------------------------------------------------------------

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                conns.retain(|h| !h.is_finished());
                if shared.conns.load(Ordering::SeqCst) >= shared.cfg.max_conns {
                    let _ = refuse(stream);
                    continue;
                }
                shared.conns.fetch_add(1, Ordering::SeqCst);
                let s = shared.clone();
                if let Ok(h) =
                    std::thread::Builder::new()
                        .name("gsls-conn".into())
                        .spawn(move || {
                            conn_loop(stream, &s);
                            s.conns.fetch_sub(1, Ordering::SeqCst);
                        })
                {
                    conns.push(h);
                } else {
                    shared.conns.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Over-cap connections get one typed refusal, then the socket closes.
fn refuse(stream: TcpStream) -> io::Result<()> {
    let mut w = BufWriter::new(stream);
    let mut buf = Vec::new();
    encode_response(&err(ErrorKind::Busy, "connection cap reached"), &mut buf);
    write_frame(&mut w, &buf)?;
    w.flush()
}

fn conn_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    // Admin requests (Shutdown) are honored from loopback peers, or
    // from anyone once `remote_admin` opts in.
    let admin = shared.cfg.remote_admin
        || stream
            .peer_addr()
            .map(|a| a.ip().is_loopback())
            .unwrap_or(false);
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    // Scratch store for decoding the string-only requests the
    // connection thread handles itself (commits decode writer-side).
    let mut scratch = TermStore::new();
    let mut svc: Option<Arc<SessionSvc>> = None;
    let mut last_activity = Instant::now();
    let mut out = Vec::new();
    // The frame reader keeps partially-read frames across the POLL
    // read timeout: a >POLL gap between TCP segments inside one frame
    // (large commit, network jitter) resumes instead of desyncing.
    let mut fr = FrameReader::new();
    let mut progressed = 0usize;
    loop {
        let payload = match fr.poll(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => {
                // Idle tick. Partial-frame byte progress counts as
                // activity so a slow in-flight transfer is not reaped.
                if fr.consumed() > progressed {
                    progressed = fr.consumed();
                    last_activity = Instant::now();
                }
                if shared.shutdown.load(Ordering::SeqCst)
                    || last_activity.elapsed() >= shared.cfg.idle_timeout
                {
                    return;
                }
                continue;
            }
            Err(FrameError::Closed) => return,
            Err(FrameError::Truncated) | Err(FrameError::Io(_)) => return,
            Err(e @ (FrameError::BadCrc | FrameError::TooLarge(_))) => {
                // The stream is still framed; answer, then hang up
                // (we cannot trust subsequent bytes from this peer).
                out.clear();
                encode_response(&err(ErrorKind::Protocol, e.to_string()), &mut out);
                let _ = write_frame(&mut writer, &out).and_then(|_| writer.flush());
                return;
            }
        };
        progressed = 0;
        last_activity = Instant::now();
        let resp = handle_request(
            &payload,
            last_activity,
            shared,
            admin,
            &mut svc,
            &mut scratch,
        );
        out.clear();
        encode_response(&resp, &mut out);
        if write_frame(&mut writer, &out)
            .and_then(|_| writer.flush())
            .is_err()
        {
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Routes one framed request and produces its reply. `svc` is the
/// session this connection is bound to (bound lazily to `"default"`);
/// `admin` says whether this peer may issue admin requests (loopback,
/// or anyone under [`ServerConfig::remote_admin`]).
fn handle_request(
    payload: &[u8],
    received: Instant,
    shared: &Arc<Shared>,
    admin: bool,
    svc: &mut Option<Arc<SessionSvc>>,
    scratch: &mut TermStore,
) -> Response {
    let kind = match peek_request_kind(payload) {
        Ok(k) => k,
        Err(e) => return err(ErrorKind::Protocol, format!("bad request: {e:?}")),
    };
    match kind {
        RequestKind::Ping => Response::Pong,
        RequestKind::Shutdown => {
            if !admin {
                return err(
                    ErrorKind::Rejected,
                    "shutdown is admin-only: connect from loopback or enable remote_admin",
                );
            }
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::Text("draining".into())
        }
        RequestKind::Open => match decode_request(scratch, payload) {
            Ok(Request::Open { session }) => match bind_session(shared, &session) {
                Ok(s) => {
                    let epoch = s.snap.lock().unwrap().epoch();
                    *svc = Some(s);
                    Response::Opened { session, epoch }
                }
                Err(resp) => resp,
            },
            Ok(_) => err(ErrorKind::Protocol, "kind/payload mismatch"),
            Err(e) => err(ErrorKind::Protocol, format!("bad open: {e:?}")),
        },
        RequestKind::Commit | RequestKind::Checkpoint => {
            let s = match ensure_bound(shared, svc) {
                Ok(s) => s,
                Err(resp) => return resp,
            };
            let (rtx, rrx) = mpsc::sync_channel(1);
            let job = if kind == RequestKind::Commit {
                Job::Commit {
                    payload: payload.to_vec(),
                    received,
                    reply: rtx,
                }
            } else {
                Job::Checkpoint { reply: rtx }
            };
            let tx = s.tx.lock().unwrap().clone();
            match tx {
                Some(tx) => {
                    if tx.send(job).is_err() {
                        return err(ErrorKind::Internal, "session writer is gone");
                    }
                }
                None => return err(ErrorKind::Shutdown, "server is draining"),
            }
            rrx.recv()
                .unwrap_or_else(|_| err(ErrorKind::Internal, "session writer is gone"))
        }
        RequestKind::Query => {
            let s = match ensure_bound(shared, svc) {
                Ok(s) => s,
                Err(resp) => return resp,
            };
            let (goal, opts) = match decode_request(scratch, payload) {
                Ok(Request::Query { goal, opts }) => (goal, opts),
                Ok(_) => return err(ErrorKind::Protocol, "kind/payload mismatch"),
                Err(e) => return err(ErrorKind::Protocol, format!("bad query: {e:?}")),
            };
            let (rtx, rrx) = mpsc::sync_channel(1);
            let job = QueryJob {
                svc: s,
                goal,
                opts,
                received,
                reply: rtx,
            };
            let tx = shared.pool_tx.lock().unwrap().clone();
            match tx {
                Some(tx) => {
                    if tx.send(job).is_err() {
                        return err(ErrorKind::Internal, "reader pool is gone");
                    }
                }
                None => return err(ErrorKind::Shutdown, "server is draining"),
            }
            rrx.recv()
                .unwrap_or_else(|_| err(ErrorKind::Internal, "reader pool is gone"))
        }
        RequestKind::Metrics => match ensure_bound(shared, svc) {
            Ok(s) => Response::Text(render_prometheus(s.obs.registry())),
            Err(resp) => resp,
        },
        RequestKind::Events => match ensure_bound(shared, svc) {
            Ok(s) => {
                let mut text = String::new();
                for ev in s.obs.tracer().drain() {
                    text.push_str(&ev.to_json());
                    text.push('\n');
                }
                Response::Text(text)
            }
            Err(resp) => resp,
        },
    }
}

fn ensure_bound(
    shared: &Arc<Shared>,
    svc: &mut Option<Arc<SessionSvc>>,
) -> Result<Arc<SessionSvc>, Response> {
    if let Some(s) = svc {
        return Ok(s.clone());
    }
    let s = bind_session(shared, "default")?;
    *svc = Some(s.clone());
    Ok(s)
}

/// Gets or creates the named session service. The expensive part —
/// [`Session::open`], which can replay a long WAL — runs with the map
/// **unlocked**: the first binder claims the name with an [`OpenSlot`],
/// concurrent binders of the same name wait on the slot, and binders
/// of other sessions are never blocked.
fn bind_session(shared: &Arc<Shared>, name: &str) -> Result<Arc<SessionSvc>, Response> {
    if !valid_session_name(name) {
        return Err(err(
            ErrorKind::Rejected,
            format!("invalid session name {name:?}"),
        ));
    }
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err(err(ErrorKind::Shutdown, "server is draining"));
    }
    enum Plan {
        Ready(Arc<SessionSvc>),
        Wait(Arc<OpenSlot>),
        Open(Arc<OpenSlot>),
    }
    let plan = {
        let mut sessions = shared.sessions.lock().unwrap();
        match sessions.get(name) {
            Some(SessionEntry::Ready(s)) => Plan::Ready(s.clone()),
            Some(SessionEntry::Opening(slot)) => Plan::Wait(slot.clone()),
            None => {
                let slot = Arc::new(OpenSlot {
                    done: Mutex::new(None),
                    cv: Condvar::new(),
                });
                sessions.insert(name.to_string(), SessionEntry::Opening(slot.clone()));
                Plan::Open(slot)
            }
        }
    };
    let slot = match plan {
        Plan::Ready(s) => return Ok(s),
        Plan::Wait(slot) => {
            let mut done = slot.done.lock().unwrap();
            while done.is_none() {
                done = slot.cv.wait(done).unwrap();
            }
            return done.clone().unwrap();
        }
        Plan::Open(slot) => slot,
    };
    // We claimed the name: open with the map unlocked, then publish
    // the verdict to the map first, the slot second (waiters that race
    // in before the verdict land on one or the other, never neither).
    let result = open_session_svc(shared, name);
    {
        let mut sessions = shared.sessions.lock().unwrap();
        match &result {
            Ok(svc) => {
                sessions.insert(name.to_string(), SessionEntry::Ready(svc.clone()));
            }
            Err(_) => {
                // Leave no trace: the next binder retries the open.
                sessions.remove(name);
            }
        }
    }
    *slot.done.lock().unwrap() = Some(result.clone());
    slot.cv.notify_all();
    result
}

/// Opens (or creates) the named session, takes its first snapshot, and
/// spawns its writer thread. Called by [`bind_session`] outside the
/// sessions-map lock.
fn open_session_svc(shared: &Arc<Shared>, name: &str) -> Result<Arc<SessionSvc>, Response> {
    let mut session = match &shared.cfg.data_dir {
        Some(root) => Session::open(root.join(name)).map_err(|e| session_err(&e))?,
        None => Session::new(),
    };
    let snap = session.snapshot();
    let obs = session.obs();
    let (tx, rx) = mpsc::sync_channel::<Job>(shared.cfg.queue_depth);
    let svc = Arc::new(SessionSvc {
        name: name.to_string(),
        tx: Mutex::new(Some(tx)),
        snap: Mutex::new(snap),
        obs,
        writer: Mutex::new(None),
    });
    let wsvc = svc.clone();
    let group_max = shared.cfg.group_max.max(1);
    let writer = std::thread::Builder::new()
        .name(format!("gsls-writer-{name}"))
        .spawn(move || writer_loop(session, rx, wsvc, group_max))
        .map_err(|e| err(ErrorKind::Internal, format!("spawn failed: {e}")))?;
    *svc.writer.lock().unwrap() = Some(writer);
    Ok(svc)
}

// ---------------------------------------------------------------------
// Writer thread: the group-commit write path
// ---------------------------------------------------------------------

fn writer_loop(
    mut session: Session,
    rx: mpsc::Receiver<Job>,
    svc: Arc<SessionSvc>,
    group_max: usize,
) {
    // recv() returning Err means every sender is gone (shutdown):
    // everything already queued has been drained first, so this is the
    // graceful flush.
    while let Ok(first) = rx.recv() {
        let mut jobs = vec![first];
        while jobs.len() < group_max {
            match rx.try_recv() {
                Ok(j) => jobs.push(j),
                Err(_) => break,
            }
        }
        while !jobs.is_empty() {
            match jobs[0] {
                Job::Checkpoint { .. } => {
                    let Job::Checkpoint { reply } = jobs.remove(0) else {
                        unreachable!()
                    };
                    let resp = match session.checkpoint() {
                        Ok(()) => Response::Text(format!(
                            "checkpointed {} at epoch {}",
                            svc.name,
                            session.epoch()
                        )),
                        Err(e) => session_err(&e),
                    };
                    let _ = reply.send(resp);
                }
                Job::Commit { .. } => {
                    // Collect the contiguous run of commits starting
                    // here and commit them as one group.
                    let mut run = Vec::new();
                    while !jobs.is_empty() && matches!(jobs[0], Job::Commit { .. }) {
                        run.push(jobs.remove(0));
                    }
                    commit_run(&mut session, &svc, run);
                }
            }
        }
    }
}

/// Pre-validation of a decoded commit against its scratch store: the
/// same shape checks the session would fail the batch on, applied
/// *before* anything is interned into the session's arena.
fn validate_commit(
    store: &TermStore,
    rules: &[Clause],
    asserts: &[Atom],
    retracts: &[Atom],
) -> Result<(), Response> {
    for c in rules {
        if !c.is_function_free(store) {
            return Err(err(
                ErrorKind::Rejected,
                format!("clause is not function-free: {}", c.display(store)),
            ));
        }
    }
    for a in asserts.iter().chain(retracts.iter()) {
        if !a.is_ground(store) || !a.args_function_free(store) {
            return Err(err(
                ErrorKind::Rejected,
                format!("not a ground function-free fact: {}", a.display(store)),
            ));
        }
    }
    Ok(())
}

/// Decodes and group-commits one contiguous run of commit jobs,
/// replying to each client individually — after the covering fsync
/// *and* after the new snapshot is published, so an acked client
/// immediately reads its own write.
///
/// Each payload decodes into a **throwaway store**: a commit that
/// never reaches the engine (malformed, mis-shaped, rejected by
/// validation, already over its deadline) must not intern anything
/// into the session's append-only arena, or a client could grow
/// session memory without bound with commits that never succeed. Only
/// batches that pass every pre-check are translated into the session
/// store ([`TermStore::translate_into`]).
fn commit_run(session: &mut Session, svc: &SessionSvc, run: Vec<Job>) {
    let mut batches: Vec<(UpdateBatch, CommitOpts)> = Vec::with_capacity(run.len());
    let mut waiting: Vec<(mpsc::SyncSender<Response>, bool)> = Vec::with_capacity(run.len());
    for job in run {
        let Job::Commit {
            payload,
            received,
            reply,
        } = job
        else {
            unreachable!()
        };
        let mut scratch = TermStore::new();
        let (rules, asserts, retracts, opts) = match decode_request(&mut scratch, &payload) {
            Ok(Request::Commit {
                rules,
                asserts,
                retracts,
                opts,
            }) => (rules, asserts, retracts, opts),
            Ok(_) => {
                let _ = reply.send(err(ErrorKind::Protocol, "kind/payload mismatch"));
                continue;
            }
            Err(e) => {
                let _ = reply.send(err(ErrorKind::Protocol, format!("bad commit: {e:?}")));
                continue;
            }
        };
        let copts = commit_opts(&opts, received);
        if copts.deadline.is_some_and(|d| Instant::now() >= d) {
            let _ = reply.send(err(
                ErrorKind::Interrupted,
                "deadline expired before the commit could start",
            ));
            continue;
        }
        if let Err(resp) = validate_commit(&scratch, &rules, &asserts, &retracts) {
            let _ = reply.send(resp);
            continue;
        }
        let map = scratch.translate_into(session.store_mut());
        let batch = UpdateBatch {
            rules: rules
                .iter()
                .map(|c| c.translate(&scratch, session.store_mut(), &map))
                .collect(),
            asserts: asserts
                .iter()
                .map(|a| a.translate(&scratch, session.store_mut(), &map))
                .collect(),
            retracts: retracts
                .iter()
                .map(|a| a.translate(&scratch, session.store_mut(), &map))
                .collect(),
        };
        let bumps = !batch.is_empty();
        batches.push((batch, copts));
        waiting.push((reply, bumps));
    }
    if batches.is_empty() {
        return;
    }
    let mut epoch = session.epoch();
    match session.commit_group(batches) {
        Ok(results) => {
            // Publish the post-group snapshot BEFORE acking anyone: a
            // client that sees its Committed reply must find its write
            // in the very next query it sends.
            *svc.snap.lock().unwrap() = session.snapshot();
            for (r, (reply, bumps)) in results.into_iter().zip(waiting) {
                let resp = match r {
                    Ok(stats) => {
                        if bumps {
                            epoch += 1;
                        }
                        Response::Committed {
                            epoch,
                            stats: CommitNumbers {
                                rules_added: stats.rules_added as u64,
                                facts_asserted: stats.facts_asserted as u64,
                                facts_reenabled: stats.facts_reenabled as u64,
                                facts_retracted: stats.facts_retracted as u64,
                                new_atoms: stats.new_atoms as u64,
                                new_clauses: stats.new_clauses as u64,
                            },
                        }
                    }
                    Err(e) => session_err(&e),
                };
                let _ = reply.send(resp);
            }
        }
        Err(e) => {
            // Group-level failure. A failed covering fsync leaves the
            // batches applied in memory but not durable; commit_group
            // poisons the session for exactly that case, and the stale
            // snapshot stays published so readers keep seeing *acked*
            // state only — never writes whose owners were told Error.
            let resp = session_err(&e);
            for (reply, _) in waiting {
                let _ = reply.send(resp.clone());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Reader pool: queries on snapshots
// ---------------------------------------------------------------------

fn reader_loop(rx: Arc<Mutex<mpsc::Receiver<QueryJob>>>) {
    loop {
        let job = {
            let guard = rx.lock().unwrap();
            guard.recv()
        };
        let Ok(job) = job else { return };
        let snap = job.svc.snap.lock().unwrap().clone();
        let resp = run_query(&snap, &job.goal, &job.opts, job.received);
        let _ = job.reply.send(resp);
    }
}

/// Compiles and evaluates one query on a snapshot — read-only, never
/// touches the owning session.
fn run_query(snap: &Snapshot, goal: &str, opts: &GovernOpts, received: Instant) -> Response {
    let q = match snap.prepare(goal) {
        Ok(q) => q,
        Err(e) => return session_err(&e),
    };
    let guard = query_guard(opts, received);
    let mut answers_true = Vec::new();
    let mut answers_undef = Vec::new();
    let mut it = match q.execute_governed(snap, &guard) {
        Ok(it) => it,
        Err(e) => return session_err(&e),
    };
    let mut truncated = false;
    for a in it.by_ref() {
        if answers_true.len() + answers_undef.len() >= MAX_ANSWERS {
            truncated = true;
            break;
        }
        let rendered = q.render_answer(snap, &a);
        match a.truth {
            Truth::True => answers_true.push(rendered),
            Truth::Undefined => answers_undef.push(rendered),
            Truth::False => {}
        }
    }
    let interrupted = it.interrupted().is_some() || truncated;
    let truth = if !answers_true.is_empty() {
        TruthTag::True
    } else if !answers_undef.is_empty() {
        TruthTag::Undefined
    } else {
        TruthTag::False
    };
    Response::Answers {
        truth,
        answers: answers_true,
        undefined: answers_undef,
        interrupted,
    }
}
