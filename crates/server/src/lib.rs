//! # gsls-serve — a concurrent multi-session network server
//!
//! A std-only TCP front end that multiplexes concurrent clients onto
//! durable [`gsls_core::Session`]s, with a **group-commit** write path:
//! contiguous queued commit batches are journaled as one WAL apply with
//! a single fsync amortized across them, and every waiting client gets
//! its own typed reply only after that fsync (the "fsync before ack"
//! contract). Reads run on `Arc`'d snapshots across a reader pool and
//! never block the writer.
//!
//! ## Wire protocol
//!
//! Every message is one frame — `[len: u32 LE][crc32: u32 LE][payload]`
//! ([`frame`]) — whose payload starts with a version byte
//! ([`gsls_lang::PROTO_VERSION`]) and a tag, then the
//! LEB128/length-prefixed body defined in `gsls_lang::proto`:
//!
//! | Request       | Payload                               | Reply |
//! |---------------|---------------------------------------|-------|
//! | `Ping`        | —                                     | `Pong` |
//! | `Open`        | session name                          | `Opened{session, epoch}` |
//! | `Commit`      | rules, asserts, retracts, budgets     | `Committed{epoch, stats}` |
//! | `Query`       | goal text, budgets                    | `Answers{truth, answers, undefined, interrupted}` |
//! | `Metrics`     | —                                     | `Text` (Prometheus format) |
//! | `Events`      | —                                     | `Text` (JSON lines) |
//! | `Checkpoint`  | —                                     | `Text` |
//! | `Shutdown`    | —                                     | `Text` |
//!
//! Any failure is `Error{kind, message}` with a coarse
//! [`gsls_lang::ErrorKind`] the client can dispatch on. Per-request
//! `deadline_ms`/`fuel`/`max_memory_bytes`/`max_clauses` budgets map
//! 1:1 onto the engine's [`gsls_core::CommitOpts`] / query guards;
//! deadlines are measured from the instant the server received the
//! request.
//!
//! ## Group-commit semantics
//!
//! One writer thread exclusively owns each session and drains a
//! bounded commit queue. Each drain takes the contiguous run of queued
//! batches and commits it via [`gsls_core::Session::commit_group`]:
//! every batch is appended to the WAL *unsynced*, validated, governed,
//! and applied under its own budget; one covering fsync at the end
//! makes the whole run durable. Replies are sent only after that
//! fsync. A batch that fails (rejection, deadline, budget) is
//! truncated off the WAL tail and rolled back — **only that client**
//! sees `Error{kind: Interrupted}` (or `Rejected`); the rest of the
//! group commits and the session keeps serving. The amortization is
//! observable in the scrape as `gsls_wal_group_records` /
//! `gsls_wal_group_syncs`.
//!
//! ## Disconnect failure model
//!
//! A client that vanishes mid-request can never poison a session:
//!
//! * a half-written frame fails its length/CRC check and is dropped —
//!   nothing reaches the engine;
//! * a fully received commit whose client is gone commits normally;
//!   the reply send fails harmlessly;
//! * connection threads own nothing but their socket, so their death
//!   releases only their connection slot.
//!
//! A *slow* client is not an ungraceful one: frames are read through a
//! resumable [`frame::FrameReader`], so arbitrary gaps between the TCP
//! segments of one frame resume where they stopped (and reset the idle
//! clock) rather than desyncing the stream. Commit payloads decode
//! into a throwaway store and are translated into the session's arena
//! only after validation, so malformed or rejected commits cannot grow
//! session memory. Idle connections are closed after
//! [`ServerConfig::idle_timeout`]; over-cap connects get one
//! `Error{kind: Busy}` reply; `Shutdown` is honored from loopback
//! peers only unless [`ServerConfig::remote_admin`] opts in; shutdown
//! drains: accepted requests finish, writers flush their queues
//! (covering fsync included) before the server joins them. If a
//! covering fsync itself fails, no batch in the group is acked and the
//! session is poisoned (its in-memory state no longer provably matches
//! the WAL) rather than serving unacknowledged writes.

pub mod client;
pub mod frame;
pub mod server;

pub use client::{expect_interrupted, Client, ClientError, CommitReceipt, QueryResults};
pub use frame::{read_frame, write_frame, FrameError, FrameReader, MAX_FRAME};
pub use server::{Server, ServerConfig, DEFAULT_IDLE_TIMEOUT, MAX_ANSWERS};
