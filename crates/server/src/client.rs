//! A blocking client for the gsls wire protocol.
//!
//! [`Client`] owns a socket, its own [`TermStore`] (client and server
//! stores are independent — the wire format carries structure, not
//! ids), and a reusable frame buffer. Every method is a synchronous
//! request/response round trip.

use crate::frame::{read_frame, write_frame, FrameError};
use gsls_lang::{
    decode_response, encode_request, parse_program, Atom, Clause, CommitNumbers, ErrorKind,
    GovernOpts, Request, Response, TermStore,
};
use std::io::{self, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's reply frame was damaged or unparseable.
    Protocol(String),
    /// Local parse failure (program/goal text given to a helper).
    Parse(String),
    /// The server answered with a typed error.
    Server {
        /// Coarse failure class.
        kind: ErrorKind,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The server answered with a response of the wrong shape.
    Unexpected(Response),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Parse(e) => write!(f, "parse error: {e}"),
            ClientError::Server { kind, message } => {
                write!(f, "server error ({kind:?}): {message}")
            }
            ClientError::Unexpected(r) => write!(f, "unexpected response: {r:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// The outcome of a successful commit.
#[derive(Debug, Clone, Copy)]
pub struct CommitReceipt {
    /// Session epoch after the commit (fsync-durable when the session
    /// is durable).
    pub epoch: u64,
    /// What the commit did.
    pub stats: CommitNumbers,
}

/// One query's results, decoded.
#[derive(Debug, Clone)]
pub struct QueryResults {
    /// `"true"`, `"false"`, or `"undefined"`.
    pub truth: &'static str,
    /// Rendered bindings whose instances are true.
    pub answers: Vec<String>,
    /// Rendered bindings whose instances are undefined.
    pub undefined: Vec<String>,
    /// Whether governance (or the answer cap) ended enumeration early.
    pub interrupted: bool,
}

/// A blocking connection to a gsls-serve server.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    store: TermStore,
    buf: Vec<u8>,
}

impl Client {
    /// Connects. The server binds the connection to the session named
    /// `"default"` until [`Client::open`] says otherwise.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            store: TermStore::new(),
            buf: Vec::new(),
        })
    }

    /// Sets a socket read timeout for replies (None = wait forever).
    pub fn set_timeout(&mut self, t: Option<Duration>) -> Result<(), ClientError> {
        self.reader.set_read_timeout(t)?;
        Ok(())
    }

    /// One raw round trip: any request in, its response out.
    pub fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.buf.clear();
        encode_request(&self.store, req, &mut self.buf);
        write_frame(&mut self.writer, &self.buf)?;
        self.writer.flush()?;
        let payload = read_frame(&mut self.reader)?;
        decode_response(&payload).map_err(|e| ClientError::Protocol(format!("{e:?}")))
    }

    fn expect_ok(&mut self, req: &Request) -> Result<Response, ClientError> {
        match self.roundtrip(req)? {
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
            other => Ok(other),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.expect_ok(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Binds this connection to the named session (created on first
    /// use); returns its current epoch.
    pub fn open(&mut self, session: &str) -> Result<u64, ClientError> {
        let req = Request::Open {
            session: session.to_string(),
        };
        match self.expect_ok(&req)? {
            Response::Opened { epoch, .. } => Ok(epoch),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Commits a batch given as program text: `rules` become program
    /// clauses, `asserts`/`retracts` must be ground facts. Any of the
    /// three may be empty. Blocks until the server's group-commit
    /// fsync covers the batch.
    pub fn commit(
        &mut self,
        rules: &str,
        asserts: &str,
        retracts: &str,
        opts: GovernOpts,
    ) -> Result<CommitReceipt, ClientError> {
        let rules = self.parse_clauses(rules)?;
        let asserts = self.parse_facts(asserts)?;
        let retracts = self.parse_facts(retracts)?;
        let req = Request::Commit {
            rules,
            asserts,
            retracts,
            opts,
        };
        match self.expect_ok(&req)? {
            Response::Committed { epoch, stats } => Ok(CommitReceipt { epoch, stats }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Runs a query, e.g. `"?- win(X)."`.
    pub fn query(&mut self, goal: &str, opts: GovernOpts) -> Result<QueryResults, ClientError> {
        let req = Request::Query {
            goal: goal.to_string(),
            opts,
        };
        match self.expect_ok(&req)? {
            Response::Answers {
                truth,
                answers,
                undefined,
                interrupted,
            } => Ok(QueryResults {
                truth: match truth {
                    gsls_lang::TruthTag::True => "true",
                    gsls_lang::TruthTag::False => "false",
                    gsls_lang::TruthTag::Undefined => "undefined",
                },
                answers,
                undefined,
                interrupted,
            }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Scrapes the bound session's metrics (Prometheus text format).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.expect_ok(&Request::Metrics)? {
            Response::Text(t) => Ok(t),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Drains the bound session's trace-event ring (JSON lines).
    pub fn events(&mut self) -> Result<String, ClientError> {
        match self.expect_ok(&Request::Events)? {
            Response::Text(t) => Ok(t),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Forces a checkpoint + WAL rotation on the bound session.
    pub fn checkpoint(&mut self) -> Result<String, ClientError> {
        match self.expect_ok(&Request::Checkpoint)? {
            Response::Text(t) => Ok(t),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Asks the server to drain and stop.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.expect_ok(&Request::Shutdown)? {
            Response::Text(_) => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    fn parse_clauses(&mut self, src: &str) -> Result<Vec<Clause>, ClientError> {
        if src.trim().is_empty() {
            return Ok(Vec::new());
        }
        let prog =
            parse_program(&mut self.store, src).map_err(|e| ClientError::Parse(e.to_string()))?;
        Ok(prog.clauses().to_vec())
    }

    fn parse_facts(&mut self, src: &str) -> Result<Vec<Atom>, ClientError> {
        let clauses = self.parse_clauses(src)?;
        let mut facts = Vec::with_capacity(clauses.len());
        for c in clauses {
            if !c.body.is_empty() {
                return Err(ClientError::Parse(format!(
                    "not a fact: {}",
                    c.display(&self.store)
                )));
            }
            facts.push(c.head.clone());
        }
        Ok(facts)
    }
}

/// Whether a client error is the server-side governance trip
/// (`ErrorKind::Interrupted`) — used by tests comparing
/// direct-session and over-the-wire behavior.
pub fn expect_interrupted(err: &ClientError) -> bool {
    matches!(
        err,
        ClientError::Server {
            kind: ErrorKind::Interrupted,
            ..
        }
    )
}
