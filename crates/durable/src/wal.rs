//! The write-ahead log: length-prefixed, checksummed records appended
//! through the [`WalStorage`] abstraction.
//!
//! ## Record framing
//!
//! ```text
//! ┌────────────┬────────────┬───────────────┐
//! │ len: u32le │ crc: u32le │ payload bytes │
//! └────────────┴────────────┴───────────────┘
//! ```
//!
//! `len` is the payload length; `crc` is the CRC-32 of the payload.
//! Records are self-verifying: on [`Wal::open`] the file is scanned
//! front to back and the scan stops at the first header that is
//! truncated, a length that overruns the file, or a checksum mismatch —
//! a **torn or corrupt tail** left by a crash mid-append. The tail is
//! truncated away so it is never replayed and never corrupts later
//! appends; everything before it is the durable prefix.
//!
//! ## Storage abstraction
//!
//! [`WalStorage`] is the minimal surface the WAL needs: read the
//! existing bytes, append, sync, truncate. Production uses
//! [`FileStorage`] over an append-mode [`std::fs::File`]; the
//! crash-injection harness swaps in [`crate::fault::FaultyFile`], which
//! buffers unsynced bytes and loses them on an injected crash —
//! exactly the failure model fsync is meant to defend against.

use crate::codec::crc32;
use crate::DurableError;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Record header size: payload length + checksum.
pub const RECORD_HEADER: u64 = 8;

/// Hard sanity cap on a single record's payload (1 GiB). A length
/// beyond this is treated as corruption, not an allocation request.
const MAX_RECORD: u32 = 1 << 30;

/// The byte-level surface the WAL writes through. Implementations must
/// behave like an append-only file: `append` adds bytes at the end,
/// `sync` makes every appended byte durable, `truncate` discards a
/// corrupt tail.
pub trait WalStorage: Send {
    /// Reads the entire current contents.
    fn read_all(&mut self) -> io::Result<Vec<u8>>;
    /// Appends `data` at the end.
    fn append(&mut self, data: &[u8]) -> io::Result<()>;
    /// Makes all appended bytes durable (fsync).
    fn sync(&mut self) -> io::Result<()>;
    /// Discards everything past `len` bytes.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// [`WalStorage`] over a real file.
#[derive(Debug)]
pub struct FileStorage {
    file: File,
}

impl FileStorage {
    /// Opens (creating if missing) the file at `path` for read+append.
    pub fn open(path: &Path) -> io::Result<FileStorage> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FileStorage { file })
    }
}

impl WalStorage for FileStorage {
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        self.file.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.sync_data()
    }
}

/// What one [`Wal::open`] scan recovered.
#[derive(Debug)]
pub struct WalScan {
    /// Every intact record's payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// End offset of each record (the WAL length after that record was
    /// appended) — the crash boundaries the recovery harness sweeps.
    pub offsets: Vec<u64>,
    /// Bytes of torn/corrupt tail discarded by the scan (0 = clean).
    pub torn_bytes: u64,
}

/// An open write-ahead log positioned for appending.
pub struct Wal {
    storage: Box<dyn WalStorage>,
    len: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("len", &self.len).finish()
    }
}

/// Splits raw WAL bytes into intact record payloads; returns the
/// payloads, their end offsets, and the length of the valid prefix.
fn scan_records(bytes: &[u8]) -> (Vec<Vec<u8>>, Vec<u64>, u64) {
    let mut records = Vec::new();
    let mut offsets = Vec::new();
    let mut pos = 0usize;
    loop {
        if bytes.len() - pos < RECORD_HEADER as usize {
            break; // truncated header (or clean EOF)
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_RECORD {
            break; // absurd length: corrupt header
        }
        let body = pos + RECORD_HEADER as usize;
        let end = body + len as usize;
        if end > bytes.len() {
            break; // torn payload
        }
        let payload = &bytes[body..end];
        if crc32(payload) != crc {
            break; // corrupt payload
        }
        records.push(payload.to_vec());
        pos = end;
        offsets.push(pos as u64);
    }
    (records, offsets, pos as u64)
}

impl Wal {
    /// Opens a WAL over `storage`: scans the existing bytes, truncates
    /// any torn/corrupt tail, and positions for appending after the
    /// last intact record.
    pub fn open(mut storage: Box<dyn WalStorage>) -> Result<(Wal, WalScan), DurableError> {
        let bytes = storage.read_all()?;
        let (records, offsets, valid) = scan_records(&bytes);
        let torn_bytes = bytes.len() as u64 - valid;
        if torn_bytes > 0 {
            storage.truncate(valid)?;
        }
        Ok((
            Wal {
                storage,
                len: valid,
            },
            WalScan {
                records,
                offsets,
                torn_bytes,
            },
        ))
    }

    /// Current length in bytes (intact records only).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one framed record and (when `sync`) makes it durable.
    /// On success the record is on storage *before* the caller applies
    /// the batch in memory — the write-ahead contract.
    pub fn append(&mut self, payload: &[u8], sync: bool) -> Result<(), DurableError> {
        let len = u32::try_from(payload.len()).map_err(|_| {
            DurableError::Corrupt(format!("record payload of {} bytes", payload.len()))
        })?;
        if len > MAX_RECORD {
            return Err(DurableError::Corrupt(format!(
                "record payload of {len} bytes"
            )));
        }
        let mut frame = Vec::with_capacity(RECORD_HEADER as usize + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.storage.append(&frame)?;
        if sync {
            self.storage.sync()?;
        }
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Makes every appended byte durable now — the group-commit hook:
    /// append several records with `sync = false`, then issue one
    /// explicit sync covering them all.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.storage.sync()?;
        Ok(())
    }

    /// Discards everything past `len` bytes — the undo hook for a
    /// record whose in-memory apply failed after the append.
    pub fn truncate_to(&mut self, len: u64) -> Result<(), DurableError> {
        if len < self.len {
            self.storage.truncate(len)?;
            self.len = len;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gsls_wal_test_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join("wal.log")
    }

    fn open_file(path: &Path) -> (Wal, WalScan) {
        let storage = Box::new(FileStorage::open(path).expect("open storage"));
        Wal::open(storage).expect("open wal")
    }

    #[test]
    fn append_reopen_roundtrip() {
        let path = temp_path("roundtrip");
        let (mut wal, scan) = open_file(&path);
        assert!(scan.records.is_empty());
        wal.append(b"alpha", true).unwrap();
        wal.append(b"beta", true).unwrap();
        wal.append(b"", true).unwrap(); // empty payloads are legal
        drop(wal);
        let (wal, scan) = open_file(&path);
        assert_eq!(
            scan.records,
            vec![b"alpha".to_vec(), b"beta".to_vec(), vec![]]
        );
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.offsets.len(), 3);
        assert_eq!(wal.len(), *scan.offsets.last().unwrap());
    }

    /// The torn-tail matrix: every way a crash can mangle the last
    /// record must truncate exactly the tail and keep the prefix.
    #[test]
    fn torn_and_corrupt_tails_truncate() {
        let path = temp_path("torn");
        let (mut wal, _) = open_file(&path);
        wal.append(b"first record", true).unwrap();
        wal.append(b"second record", true).unwrap();
        drop(wal);
        let clean = std::fs::read(&path).unwrap();
        let first_end = RECORD_HEADER as usize + b"first record".len();

        // (a) every truncation point inside the second record.
        for cut in first_end..clean.len() {
            std::fs::write(&path, &clean[..cut]).unwrap();
            let (wal, scan) = open_file(&path);
            assert_eq!(scan.records, vec![b"first record".to_vec()], "cut {cut}");
            assert_eq!(scan.torn_bytes, (cut - first_end) as u64);
            assert_eq!(wal.len(), first_end as u64);
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                first_end as u64,
                "tail physically truncated at cut {cut}"
            );
        }

        // (b) corrupt checksum: flip one payload byte of the tail.
        let mut corrupt = clean.clone();
        *corrupt.last_mut().unwrap() ^= 0x01;
        std::fs::write(&path, &corrupt).unwrap();
        let (_, scan) = open_file(&path);
        assert_eq!(scan.records, vec![b"first record".to_vec()]);

        // (c) corrupt header: absurd length field.
        let mut bad_len = clean[..first_end].to_vec();
        bad_len.extend_from_slice(&u32::MAX.to_le_bytes());
        bad_len.extend_from_slice(&[0u8; 12]);
        std::fs::write(&path, &bad_len).unwrap();
        let (_, scan) = open_file(&path);
        assert_eq!(scan.records, vec![b"first record".to_vec()]);

        // (d) appending after a torn-tail recovery produces a clean log.
        std::fs::write(&path, &clean[..clean.len() - 3]).unwrap();
        let (mut wal, _) = open_file(&path);
        wal.append(b"third record", true).unwrap();
        drop(wal);
        let (_, scan) = open_file(&path);
        assert_eq!(
            scan.records,
            vec![b"first record".to_vec(), b"third record".to_vec()]
        );
        assert_eq!(scan.torn_bytes, 0);
    }

    /// A flipped byte in the *middle* record cuts the durable prefix
    /// there: later records are unreachable (no resynchronization), by
    /// design — the log's validity is a prefix property.
    #[test]
    fn corruption_mid_log_stops_scan() {
        let path = temp_path("midlog");
        let (mut wal, _) = open_file(&path);
        wal.append(b"aaaa", true).unwrap();
        wal.append(b"bbbb", true).unwrap();
        wal.append(b"cccc", true).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let second_payload = 2 * RECORD_HEADER as usize + 4;
        bytes[second_payload] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (_, scan) = open_file(&path);
        assert_eq!(scan.records, vec![b"aaaa".to_vec()]);
    }

    #[test]
    fn truncate_to_undoes_last_append() {
        let path = temp_path("undo");
        let (mut wal, _) = open_file(&path);
        wal.append(b"keep", true).unwrap();
        let mark = wal.len();
        wal.append(b"doomed batch", true).unwrap();
        wal.truncate_to(mark).unwrap();
        drop(wal);
        let (_, scan) = open_file(&path);
        assert_eq!(scan.records, vec![b"keep".to_vec()]);
    }
}
