//! # gsls-durable — write-ahead logging, checkpoint/restore, crash injection
//!
//! Std-only durability for [`gsls`] sessions, layered as:
//!
//! * [`codec`] — CRC-32 plus the payload codecs for WAL commit batches
//!   ([`Batch`]) and checkpoint images ([`CheckpointImage`]), built on
//!   the stable structural term codec in `gsls_lang::wire`.
//! * [`wal`] — the write-ahead log proper: length-prefixed, checksummed
//!   records behind the [`WalStorage`] trait; torn/corrupt tails are
//!   detected on open and truncated, never replayed.
//! * [`checkpoint`] — atomically-written (temp file + rename + dir
//!   fsync), checksummed snapshot files, organized into numbered
//!   generations with a two-generation retention policy.
//! * [`log`] — [`DurableLog`], the session-facing surface: open a
//!   directory, recover "newest valid checkpoint + WAL tail", append
//!   commit records, rotate at checkpoint time.
//! * [`fault`] — [`FaultyFile`], a [`WalStorage`] double that buffers
//!   unsynced bytes and loses them on an injected crash, driving the
//!   recovery test harness.
//!
//! The invariant the whole crate serves: **a record is durable before
//! it is applied**, and on reopen the recovered state equals replaying
//! exactly the durable prefix of commits — no more, no less.

pub mod checkpoint;
pub mod codec;
pub mod fault;
pub mod log;
pub mod wal;

pub use checkpoint::{
    ckpt_path, read_checkpoint, scan_dir, wal_path, write_checkpoint, Generations,
};
pub use codec::{
    crc32, decode_batch, decode_checkpoint, encode_batch, encode_checkpoint, Batch, CheckpointImage,
};
pub use fault::{FaultPlan, FaultyFile, INJECTED_CRASH};
pub use log::{DurableLog, DurableOpts, Recovered, StorageKind, WalObs};
pub use wal::{FileStorage, Wal, WalScan, WalStorage};

use gsls_lang::WireError;

/// Everything that can go wrong in the durability layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// An underlying I/O operation failed (message carries the
    /// `std::io::Error` rendering; kept as a string so the error type
    /// stays `Clone + Eq` for the session layer).
    Io(String),
    /// Stored bytes failed structural validation (bad magic, checksum
    /// mismatch, impossible counts, trailing garbage).
    Corrupt(String),
    /// The term-level wire codec rejected a payload.
    Wire(WireError),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(msg) => write!(f, "i/o error: {msg}"),
            DurableError::Corrupt(msg) => write!(f, "corrupt durable state: {msg}"),
            DurableError::Wire(e) => write!(f, "wire decode error: {e}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> DurableError {
        DurableError::Io(e.to_string())
    }
}

impl From<WireError> for DurableError {
    fn from(e: WireError) -> DurableError {
        DurableError::Wire(e)
    }
}
