//! Payload codecs for the durability layer: CRC-32 checksums, the WAL
//! commit-batch record, and the checkpoint image.
//!
//! Everything here is **payload** bytes — framing (length prefixes,
//! torn-tail detection) lives in [`crate::wal`] and [`crate::checkpoint`].
//! Terms, atoms and clauses serialize through the stable structural
//! codec in [`gsls_lang::wire`], so payloads survive process restarts
//! and decode into any fresh [`TermStore`].

use crate::DurableError;
use gsls_lang::wire::{
    decode_atom, decode_clause, encode_atom, encode_clause, read_uv, write_uv, WireReader,
};
use gsls_lang::{Atom, Clause, TermStore};

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the
/// checksum guarding WAL records and checkpoint images. Table-driven,
/// std-only.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// One durable commit batch: the exact update set one `Session::commit`
/// applies, in the session's documented order (rules → asserts →
/// retracts), stamped with the epoch the commit produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Batch {
    /// The commit epoch this batch produced (monotone from 1).
    pub epoch: u64,
    /// Rule clauses added by the batch.
    pub rules: Vec<Clause>,
    /// Ground facts asserted by the batch.
    pub asserts: Vec<Atom>,
    /// Ground facts retracted by the batch.
    pub retracts: Vec<Atom>,
}

/// Encodes a commit batch into WAL-record payload bytes.
pub fn encode_batch(store: &TermStore, batch: &Batch) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    write_uv(&mut out, batch.epoch);
    write_uv(&mut out, batch.rules.len() as u64);
    for c in &batch.rules {
        encode_clause(store, c, &mut out);
    }
    write_uv(&mut out, batch.asserts.len() as u64);
    for a in &batch.asserts {
        encode_atom(store, a, &mut out);
    }
    write_uv(&mut out, batch.retracts.len() as u64);
    for a in &batch.retracts {
        encode_atom(store, a, &mut out);
    }
    out
}

/// Decodes a commit batch, interning into `store`.
pub fn decode_batch(store: &mut TermStore, payload: &[u8]) -> Result<Batch, DurableError> {
    let mut r = WireReader::new(payload);
    let epoch = read_uv(&mut r)?;
    let n_rules = checked_count(read_uv(&mut r)?, &r)?;
    let mut rules = Vec::with_capacity(n_rules);
    for _ in 0..n_rules {
        rules.push(decode_clause(store, &mut r)?);
    }
    let n_asserts = checked_count(read_uv(&mut r)?, &r)?;
    let mut asserts = Vec::with_capacity(n_asserts);
    for _ in 0..n_asserts {
        asserts.push(decode_atom(store, &mut r)?);
    }
    let n_retracts = checked_count(read_uv(&mut r)?, &r)?;
    let mut retracts = Vec::with_capacity(n_retracts);
    for _ in 0..n_retracts {
        retracts.push(decode_atom(store, &mut r)?);
    }
    if !r.is_empty() {
        return Err(DurableError::Corrupt("trailing bytes after batch".into()));
    }
    Ok(Batch {
        epoch,
        rules,
        asserts,
        retracts,
    })
}

/// A checkpoint image: everything needed to rebuild a session's source
/// state — the full program text (rules plus every asserted fact, in
/// commit order) and the currently-retracted fact set — plus the epoch
/// at which it was taken.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointImage {
    /// The commit epoch captured by the image.
    pub epoch: u64,
    /// The complete source program (rules and fact clauses, in order).
    pub clauses: Vec<Clause>,
    /// Source facts currently switched off by retraction.
    pub retracted: Vec<Atom>,
}

/// Encodes a checkpoint image into checkpoint-file payload bytes.
pub fn encode_checkpoint(store: &TermStore, image: &CheckpointImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    write_uv(&mut out, image.epoch);
    write_uv(&mut out, image.clauses.len() as u64);
    for c in &image.clauses {
        encode_clause(store, c, &mut out);
    }
    write_uv(&mut out, image.retracted.len() as u64);
    for a in &image.retracted {
        encode_atom(store, a, &mut out);
    }
    out
}

/// Decodes a checkpoint image, interning into `store`.
pub fn decode_checkpoint(
    store: &mut TermStore,
    payload: &[u8],
) -> Result<CheckpointImage, DurableError> {
    let mut r = WireReader::new(payload);
    let epoch = read_uv(&mut r)?;
    let n_clauses = checked_count(read_uv(&mut r)?, &r)?;
    let mut clauses = Vec::with_capacity(n_clauses);
    for _ in 0..n_clauses {
        clauses.push(decode_clause(store, &mut r)?);
    }
    let n_retracted = checked_count(read_uv(&mut r)?, &r)?;
    let mut retracted = Vec::with_capacity(n_retracted);
    for _ in 0..n_retracted {
        retracted.push(decode_atom(store, &mut r)?);
    }
    if !r.is_empty() {
        return Err(DurableError::Corrupt(
            "trailing bytes after checkpoint".into(),
        ));
    }
    Ok(CheckpointImage {
        epoch,
        clauses,
        retracted,
    })
}

/// Bounds a decoded element count by the remaining input (each element
/// costs at least one byte), so corrupt counts cannot OOM the decoder.
fn checked_count(n: u64, r: &WireReader<'_>) -> Result<usize, DurableError> {
    if n > r.remaining() as u64 {
        return Err(DurableError::Corrupt(format!(
            "element count {n} exceeds remaining payload"
        )));
    }
    Ok(n as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsls_lang::parse_program;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    fn sample_batch(store: &mut TermStore) -> Batch {
        let program = parse_program(store, "win(X) :- move(X, Y), ~win(Y).").unwrap();
        let facts = parse_program(store, "move(a, b). move(b, c).").unwrap();
        Batch {
            epoch: 7,
            rules: program.clauses().to_vec(),
            asserts: facts.clauses().iter().map(|c| c.head.clone()).collect(),
            retracts: vec![facts.clauses()[0].head.clone()],
        }
    }

    #[test]
    fn batch_roundtrip() {
        let mut store = TermStore::new();
        let batch = sample_batch(&mut store);
        let bytes = encode_batch(&store, &batch);
        let mut store2 = TermStore::new();
        let got = decode_batch(&mut store2, &bytes).unwrap();
        assert_eq!(got.epoch, 7);
        assert_eq!(got.rules.len(), 1);
        assert_eq!(
            got.rules[0].display(&store2),
            batch.rules[0].display(&store)
        );
        assert_eq!(got.asserts.len(), 2);
        assert_eq!(got.asserts[1].display(&store2), "move(b, c)");
        assert_eq!(got.retracts[0].display(&store2), "move(a, b)");
    }

    #[test]
    fn batch_truncation_errors() {
        let mut store = TermStore::new();
        let batch = sample_batch(&mut store);
        let bytes = encode_batch(&store, &batch);
        for cut in 0..bytes.len() {
            let mut s = TermStore::new();
            assert!(
                decode_batch(&mut s, &bytes[..cut]).is_err(),
                "cut at {cut} must error"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        let mut s = TermStore::new();
        assert!(decode_batch(&mut s, &extended).is_err(), "trailing byte");
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut store = TermStore::new();
        let program =
            parse_program(&mut store, "e(a, b). t(X, Y) :- e(X, Y). u(X) :- ~f(X).").unwrap();
        let image = CheckpointImage {
            epoch: 42,
            clauses: program.clauses().to_vec(),
            retracted: vec![program.clauses()[0].head.clone()],
        };
        let bytes = encode_checkpoint(&store, &image);
        let mut store2 = TermStore::new();
        let got = decode_checkpoint(&mut store2, &bytes).unwrap();
        assert_eq!(got.epoch, 42);
        assert_eq!(got.clauses.len(), 3);
        assert_eq!(got.clauses[1].display(&store2), "t(X, Y) :- e(X, Y).");
        assert_eq!(got.retracted[0].display(&store2), "e(a, b)");
    }

    #[test]
    fn absurd_counts_rejected() {
        // epoch 0, then a clause count far beyond the payload.
        let mut bytes = Vec::new();
        write_uv(&mut bytes, 0);
        write_uv(&mut bytes, u64::MAX / 2);
        let mut s = TermStore::new();
        assert!(decode_checkpoint(&mut s, &bytes).is_err());
        assert!(decode_batch(&mut s, &bytes).is_err());
    }
}
