//! The durable log: one directory holding checkpoint generations and
//! their write-ahead logs, presented as a single append/recover
//! surface for the session layer.
//!
//! ## Directory layout
//!
//! ```text
//! <dir>/ckpt-0000000004.gsls   checkpoint taken at generation 4
//! <dir>/wal-0000000004.log     commits since that checkpoint
//! <dir>/ckpt-0000000003.gsls   previous generation (fallback)
//! <dir>/wal-0000000003.log     commits between ckpt 3 and ckpt 4
//! ```
//!
//! Generation `g`'s WAL holds exactly the commits between checkpoint
//! `g` and checkpoint `g+1`, so state = newest valid checkpoint +
//! every WAL from that generation forward, replayed in order. If the
//! newest checkpoint fails its checksum, recovery falls back to the
//! previous generation and replays through *both* WALs — epoch stamps
//! on each record make the longer replay idempotent. Two generations
//! are retained; older ones are deleted when a checkpoint completes.

use crate::checkpoint::{ckpt_path, read_checkpoint, scan_dir, wal_path, write_checkpoint};
use crate::fault::{FaultPlan, FaultyFile};
use crate::wal::{FileStorage, Wal, WalStorage, RECORD_HEADER};
use crate::DurableError;
use gsls_obs::{Counter, Registry};
use std::fs;
use std::path::{Path, PathBuf};

/// WAL/checkpoint I/O counters, resolved once from a session's metrics
/// registry and recorded from inside the log's I/O paths. Defaults to
/// detached handles (recording nothing) until
/// [`DurableLog::set_obs`] attaches real ones.
#[derive(Clone, Default)]
pub struct WalObs {
    /// Records appended to the active WAL.
    pub appends: Counter,
    /// Bytes appended (payload + record header).
    pub appended_bytes: Counter,
    /// Fsyncs issued by appends.
    pub fsyncs: Counter,
    /// WAL rotations (one per installed checkpoint).
    pub rotations: Counter,
    /// Checkpoint payload bytes written.
    pub checkpoint_bytes: Counter,
    /// Journaled records unwound by a failed in-memory apply.
    pub truncates: Counter,
    /// Group-commit fsyncs: one per [`DurableLog::sync_group`] call
    /// that actually reached storage.
    pub group_syncs: Counter,
    /// Records covered by those group fsyncs. `group_records /
    /// group_syncs` is the amortization ratio the serving benchmark
    /// asserts on.
    pub group_records: Counter,
}

impl WalObs {
    /// Resolves the `wal.*` counters from `reg`.
    pub fn register(reg: &Registry) -> WalObs {
        WalObs {
            appends: reg.counter("wal.appends"),
            appended_bytes: reg.counter("wal.appended_bytes"),
            fsyncs: reg.counter("wal.fsyncs"),
            rotations: reg.counter("wal.rotations"),
            checkpoint_bytes: reg.counter("wal.checkpoint_bytes"),
            truncates: reg.counter("wal.truncates"),
            group_syncs: reg.counter("wal.group_syncs"),
            group_records: reg.counter("wal.group_records"),
        }
    }
}

/// How the WAL reaches disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum StorageKind {
    /// Real files, real fsync.
    #[default]
    File,
    /// Fault-injecting storage for crash tests ([`FaultyFile`]); the
    /// plan applies to the *active* WAL file of each generation.
    Faulty(FaultPlan),
}

/// Durability tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableOpts {
    /// Take a checkpoint once the active WAL holds this many records.
    pub checkpoint_records: usize,
    /// ... or once it holds this many bytes, whichever comes first.
    pub checkpoint_bytes: u64,
    /// Fsync every appended record (the durability guarantee; turning
    /// this off trades crash safety for latency).
    pub fsync: bool,
    /// Storage backend for the WAL.
    pub storage: StorageKind,
}

impl Default for DurableOpts {
    fn default() -> DurableOpts {
        DurableOpts {
            checkpoint_records: 1024,
            checkpoint_bytes: 4 << 20,
            fsync: true,
            storage: StorageKind::File,
        }
    }
}

/// What [`DurableLog::open`] recovered from the directory.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Payload of the newest checkpoint that passed its checksum.
    pub checkpoint: Option<Vec<u8>>,
    /// WAL record payloads to replay on top, oldest first.
    pub records: Vec<Vec<u8>>,
    /// True when the newest checkpoint was corrupt and recovery fell
    /// back to the previous generation.
    pub fell_back: bool,
    /// Torn/corrupt WAL bytes truncated during recovery.
    pub torn_bytes: u64,
}

/// An open durable log positioned for appending.
pub struct DurableLog {
    dir: PathBuf,
    opts: DurableOpts,
    /// Active generation: appends go to `wal-<gen>.log`.
    gen: u64,
    wal: Wal,
    /// Records appended to the active WAL (including recovered ones).
    records: usize,
    /// I/O counters (detached until [`Self::set_obs`]).
    obs: WalObs,
}

impl std::fmt::Debug for DurableLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableLog")
            .field("dir", &self.dir)
            .field("gen", &self.gen)
            .field("records", &self.records)
            .finish()
    }
}

impl DurableLog {
    /// Opens (creating if needed) the durable log in `dir` and
    /// recovers its state: newest valid checkpoint plus the WAL tail.
    pub fn open(dir: &Path, opts: DurableOpts) -> Result<(DurableLog, Recovered), DurableError> {
        fs::create_dir_all(dir)?;
        let gens = scan_dir(dir)?;

        // Pick the newest checkpoint that verifies; fall back once.
        let mut checkpoint = None;
        let mut base_gen = 0u64;
        let mut fell_back = false;
        for &g in gens.checkpoints.iter().rev() {
            match read_checkpoint(&ckpt_path(dir, g)) {
                Ok(payload) => {
                    checkpoint = Some(payload);
                    base_gen = g;
                    break;
                }
                Err(_) => fell_back = true,
            }
        }
        if checkpoint.is_none() {
            fell_back = !gens.checkpoints.is_empty();
        }

        // Replay every WAL from the base generation forward. Earlier
        // generations' logs are closed: scan them read-only (still
        // truncating torn tails) and keep only the newest open for
        // appending.
        let active_gen = gens
            .wals
            .iter()
            .copied()
            .max()
            .unwrap_or(base_gen)
            .max(base_gen);
        let mut records = Vec::new();
        let mut torn_bytes = 0u64;
        for g in base_gen..active_gen {
            let path = wal_path(dir, g);
            if !path.exists() {
                continue;
            }
            let storage = Box::new(FileStorage::open(&path)?);
            let (_, scan) = Wal::open(storage)?;
            torn_bytes += scan.torn_bytes;
            records.extend(scan.records);
        }
        let storage = open_storage(&opts.storage, &wal_path(dir, active_gen))?;
        let (wal, scan) = Wal::open(storage)?;
        torn_bytes += scan.torn_bytes;
        let active_records = scan.records.len();
        records.extend(scan.records);

        Ok((
            DurableLog {
                dir: dir.to_path_buf(),
                opts,
                gen: active_gen,
                wal,
                records: active_records,
                obs: WalObs::default(),
            },
            Recovered {
                checkpoint,
                records,
                fell_back,
                torn_bytes,
            },
        ))
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Attaches I/O counters; subsequent appends, rotations, and
    /// truncates record into them.
    pub fn set_obs(&mut self, obs: WalObs) {
        self.obs = obs;
    }

    /// Active WAL length in bytes — the undo mark for [`Self::truncate_to`].
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// Appends one commit-batch record, fsync'ing per the options.
    /// On success the record is durable *before* the caller mutates
    /// in-memory state.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), DurableError> {
        self.wal.append(payload, self.opts.fsync)?;
        self.records += 1;
        self.obs.appends.add(1);
        self.obs
            .appended_bytes
            .add(RECORD_HEADER + payload.len() as u64);
        if self.opts.fsync {
            self.obs.fsyncs.add(1);
        }
        Ok(())
    }

    /// Appends one record **without** fsync'ing, regardless of the
    /// configured fsync policy — the group-commit write path. The
    /// caller owes a [`Self::sync_group`] before acknowledging any of
    /// the appended batches; until then the record is on the page
    /// cache only and a crash may tear it off (recovery truncates the
    /// torn tail, which is safe precisely because no ack was sent).
    pub fn append_unsynced(&mut self, payload: &[u8]) -> Result<(), DurableError> {
        self.wal.append(payload, false)?;
        self.records += 1;
        self.obs.appends.add(1);
        self.obs
            .appended_bytes
            .add(RECORD_HEADER + payload.len() as u64);
        Ok(())
    }

    /// One fsync covering the `records` batches appended (unsynced)
    /// since the last sync — the amortization step of group commit.
    /// Respects the configured fsync policy: with `fsync: false` the
    /// group counters still advance (the grouping happened) but no
    /// physical sync is issued.
    pub fn sync_group(&mut self, records: u64) -> Result<(), DurableError> {
        if self.opts.fsync {
            self.wal.sync()?;
            self.obs.fsyncs.add(1);
        }
        self.obs.group_syncs.add(1);
        self.obs.group_records.add(records);
        Ok(())
    }

    /// Rolls the active WAL back to a mark taken with [`Self::wal_len`]
    /// — used when the in-memory apply of an already-journaled batch
    /// fails, so the record is never replayed.
    pub fn truncate_to(&mut self, mark: u64) -> Result<(), DurableError> {
        if mark < self.wal.len() {
            self.records = self.records.saturating_sub(1);
            self.obs.truncates.add(1);
        }
        self.wal.truncate_to(mark)
    }

    /// Whether the active WAL has grown past the checkpoint thresholds.
    pub fn should_checkpoint(&self) -> bool {
        self.records >= self.opts.checkpoint_records || self.wal.len() >= self.opts.checkpoint_bytes
    }

    /// Installs a new checkpoint: writes it atomically as the next
    /// generation, rotates to a fresh WAL, and deletes generations
    /// older than the retained two. Crash-safe at every step — a
    /// crash before the rename keeps the old generation; after it,
    /// recovery uses the new checkpoint and the (possibly empty) new
    /// WAL; retention deletes are pure garbage collection.
    pub fn install_checkpoint(&mut self, payload: &[u8]) -> Result<(), DurableError> {
        let new_gen = self.gen + 1;
        write_checkpoint(&self.dir, new_gen, payload)?;
        let storage = open_storage(&self.opts.storage, &wal_path(&self.dir, new_gen))?;
        let (wal, _) = Wal::open(storage)?;
        self.wal = wal;
        self.gen = new_gen;
        self.records = 0;
        self.obs.rotations.add(1);
        self.obs.checkpoint_bytes.add(payload.len() as u64);
        // Retain this generation and the previous one; GC the rest.
        if new_gen >= 2 {
            let gens = scan_dir(&self.dir)?;
            for g in gens.checkpoints.into_iter().chain(gens.wals) {
                if g + 2 <= new_gen {
                    let _ = fs::remove_file(ckpt_path(&self.dir, g));
                    let _ = fs::remove_file(wal_path(&self.dir, g));
                }
            }
        }
        Ok(())
    }
}

fn open_storage(kind: &StorageKind, path: &Path) -> Result<Box<dyn WalStorage>, DurableError> {
    Ok(match kind {
        StorageKind::File => Box::new(FileStorage::open(path)?),
        StorageKind::Faulty(plan) => Box::new(FaultyFile::open(path, plan.clone())?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gsls_log_test_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn opts(records: usize) -> DurableOpts {
        DurableOpts {
            checkpoint_records: records,
            ..DurableOpts::default()
        }
    }

    #[test]
    fn fresh_dir_then_append_then_recover() {
        let dir = temp_dir("fresh");
        let (mut log, rec) = DurableLog::open(&dir, opts(100)).unwrap();
        assert!(rec.checkpoint.is_none());
        assert!(rec.records.is_empty());
        log.append(b"one").unwrap();
        log.append(b"two").unwrap();
        drop(log);
        let (_, rec) = DurableLog::open(&dir, opts(100)).unwrap();
        assert_eq!(rec.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(!rec.fell_back);
    }

    #[test]
    fn checkpoint_rotates_wal_and_retains_two_generations() {
        let dir = temp_dir("rotate");
        let (mut log, _) = DurableLog::open(&dir, opts(2)).unwrap();
        log.append(b"a").unwrap();
        log.append(b"b").unwrap();
        assert!(log.should_checkpoint());
        log.install_checkpoint(b"ckpt-1 state").unwrap();
        assert!(!log.should_checkpoint());
        log.append(b"c").unwrap();
        log.append(b"d").unwrap();
        log.install_checkpoint(b"ckpt-2 state").unwrap();
        log.append(b"e").unwrap();
        drop(log);

        let gens = scan_dir(&dir).unwrap();
        assert_eq!(gens.checkpoints, vec![1, 2], "only two generations kept");
        let (_, rec) = DurableLog::open(&dir, opts(2)).unwrap();
        assert_eq!(rec.checkpoint.as_deref(), Some(&b"ckpt-2 state"[..]));
        assert_eq!(rec.records, vec![b"e".to_vec()]);
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_and_replays_both_wals() {
        let dir = temp_dir("fallback");
        let (mut log, _) = DurableLog::open(&dir, opts(100)).unwrap();
        log.append(b"pre-1").unwrap();
        log.install_checkpoint(b"first checkpoint").unwrap();
        log.append(b"mid-1").unwrap();
        log.append(b"mid-2").unwrap();
        log.install_checkpoint(b"second checkpoint").unwrap();
        log.append(b"post-1").unwrap();
        drop(log);

        // Corrupt the newest checkpoint's payload.
        let newest = ckpt_path(&dir, 2);
        let mut bytes = fs::read(&newest).unwrap();
        *bytes.last_mut().unwrap() ^= 1;
        fs::write(&newest, &bytes).unwrap();

        let (_, rec) = DurableLog::open(&dir, opts(100)).unwrap();
        assert!(rec.fell_back);
        assert_eq!(rec.checkpoint.as_deref(), Some(&b"first checkpoint"[..]));
        // Replays generation-1 WAL then generation-2 WAL.
        assert_eq!(
            rec.records,
            vec![b"mid-1".to_vec(), b"mid-2".to_vec(), b"post-1".to_vec()]
        );
    }

    #[test]
    fn truncate_to_unwinds_a_journaled_record() {
        let dir = temp_dir("unwind");
        let (mut log, _) = DurableLog::open(&dir, opts(100)).unwrap();
        log.append(b"keep").unwrap();
        let mark = log.wal_len();
        log.append(b"doomed").unwrap();
        log.truncate_to(mark).unwrap();
        drop(log);
        let (_, rec) = DurableLog::open(&dir, opts(100)).unwrap();
        assert_eq!(rec.records, vec![b"keep".to_vec()]);
    }

    #[test]
    fn group_append_then_sync_recovers_all_records() {
        let dir = temp_dir("group");
        let (mut log, _) = DurableLog::open(&dir, opts(100)).unwrap();
        log.append_unsynced(b"g1").unwrap();
        log.append_unsynced(b"g2").unwrap();
        log.append_unsynced(b"g3").unwrap();
        log.sync_group(3).unwrap();
        drop(log);
        let (_, rec) = DurableLog::open(&dir, opts(100)).unwrap();
        assert_eq!(
            rec.records,
            vec![b"g1".to_vec(), b"g2".to_vec(), b"g3".to_vec()]
        );
    }

    #[test]
    fn group_tail_truncates_like_a_failed_apply() {
        let dir = temp_dir("group_undo");
        let (mut log, _) = DurableLog::open(&dir, opts(100)).unwrap();
        log.append_unsynced(b"good").unwrap();
        let mark = log.wal_len();
        log.append_unsynced(b"bad apply").unwrap();
        log.truncate_to(mark).unwrap();
        log.append_unsynced(b"next").unwrap();
        log.sync_group(2).unwrap();
        drop(log);
        let (_, rec) = DurableLog::open(&dir, opts(100)).unwrap();
        assert_eq!(rec.records, vec![b"good".to_vec(), b"next".to_vec()]);
    }

    #[test]
    fn byte_threshold_triggers_checkpoint() {
        let dir = temp_dir("bytes");
        let o = DurableOpts {
            checkpoint_records: usize::MAX,
            checkpoint_bytes: 32,
            ..DurableOpts::default()
        };
        let (mut log, _) = DurableLog::open(&dir, o).unwrap();
        assert!(!log.should_checkpoint());
        log.append(&[0u8; 40]).unwrap();
        assert!(log.should_checkpoint());
    }
}
