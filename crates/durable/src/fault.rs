//! Crash injection: a [`WalStorage`] test double that models the
//! failure modes fsync exists to defend against.
//!
//! [`FaultyFile`] wraps a real file but buffers every append in a
//! volatile `pending` buffer — the simulated page cache. A successful
//! `sync` flushes `pending` to the file; a *dropped* sync (per the
//! [`FaultPlan`]) reports success while leaving the bytes volatile,
//! exactly like a disk that lies about fsync. When the plan's byte
//! budget runs out the file **crashes**: unsynced bytes are lost —
//! except for a configurable torn tail that "reached the platter"
//! mid-write — and every later operation fails. Re-opening the
//! underlying path with [`crate::wal::FileStorage`] then plays the
//! part of the post-reboot recovery.

use crate::wal::WalStorage;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// A deterministic schedule of injected storage faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Crash once this many bytes have been offered to `append`
    /// (the crashing write is cut at the boundary). `None` = never.
    pub crash_after_bytes: Option<u64>,
    /// 0-based indices of `sync` calls that silently do nothing while
    /// still reporting success.
    pub drop_syncs: Vec<u64>,
    /// At crash time, this many unsynced bytes (in append order) leak
    /// to the durable file anyway — a torn write caught mid-flight.
    pub torn_tail_bytes: u64,
}

impl FaultPlan {
    /// A plan that never faults (useful as a sweep baseline).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }
}

/// The error kind every operation returns after an injected crash.
pub const INJECTED_CRASH: &str = "injected crash";

/// [`WalStorage`] with fault injection; see the module docs for the
/// volatility model.
#[derive(Debug)]
pub struct FaultyFile {
    file: File,
    plan: FaultPlan,
    /// Total bytes offered to `append` over the file's lifetime.
    appended: u64,
    /// Number of `sync` calls made so far.
    syncs: u64,
    /// Appended-but-unsynced bytes (the simulated page cache).
    pending: Vec<u8>,
    crashed: bool,
}

impl FaultyFile {
    /// Opens (creating if missing) `path` with the given fault plan.
    pub fn open(path: &Path, plan: FaultPlan) -> io::Result<FaultyFile> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FaultyFile {
            file,
            plan,
            appended: 0,
            syncs: 0,
            pending: Vec::new(),
            crashed: false,
        })
    }

    /// Whether the injected crash has fired.
    pub fn has_crashed(&self) -> bool {
        self.crashed
    }

    fn crash(&mut self) -> io::Error {
        let torn = (self.plan.torn_tail_bytes as usize).min(self.pending.len());
        if torn > 0 {
            // A torn write: the first `torn` volatile bytes made it to
            // the platter before power was lost.
            let tail: Vec<u8> = self.pending[..torn].to_vec();
            let _ = self.file.seek(SeekFrom::End(0));
            let _ = self.file.write_all(&tail);
            let _ = self.file.sync_data();
        }
        self.pending.clear();
        self.crashed = true;
        io::Error::other(INJECTED_CRASH)
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.crashed {
            Err(io::Error::other(INJECTED_CRASH))
        } else {
            Ok(())
        }
    }
}

impl WalStorage for FaultyFile {
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.check_alive()?;
        self.file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        self.file.read_to_end(&mut buf)?;
        buf.extend_from_slice(&self.pending);
        Ok(buf)
    }

    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.check_alive()?;
        if let Some(limit) = self.plan.crash_after_bytes {
            let budget = limit.saturating_sub(self.appended);
            if (data.len() as u64) > budget {
                // The write is cut at the crash boundary.
                self.pending.extend_from_slice(&data[..budget as usize]);
                self.appended += budget;
                return Err(self.crash());
            }
        }
        self.pending.extend_from_slice(data);
        self.appended += data.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.check_alive()?;
        let idx = self.syncs;
        self.syncs += 1;
        if self.plan.drop_syncs.contains(&idx) {
            return Ok(()); // the lying disk: success without durability
        }
        if !self.pending.is_empty() {
            self.file.seek(SeekFrom::End(0))?;
            let pending = std::mem::take(&mut self.pending);
            self.file.write_all(&pending)?;
        }
        self.file.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.check_alive()?;
        let durable = self.file.metadata()?.len();
        if len <= durable {
            self.file.set_len(len)?;
            self.pending.clear();
        } else {
            self.pending.truncate((len - durable) as usize);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{FileStorage, Wal};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gsls_fault_test_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join("wal.log")
    }

    #[test]
    fn unsynced_bytes_are_lost_on_crash() {
        let path = temp_path("lost");
        let mut f = FaultyFile::open(
            &path,
            FaultPlan {
                crash_after_bytes: Some(1_000),
                ..FaultPlan::default()
            },
        )
        .unwrap();
        f.append(b"synced").unwrap();
        f.sync().unwrap();
        f.append(b"volatile").unwrap();
        // Crash by exhausting the byte budget.
        assert!(f.append(&[0u8; 2_000]).is_err());
        assert!(f.has_crashed());
        assert!(f.read_all().is_err(), "dead after crash");
        assert_eq!(std::fs::read(&path).unwrap(), b"synced");
    }

    #[test]
    fn dropped_sync_reports_success_but_loses_data() {
        let path = temp_path("dropped");
        let mut f = FaultyFile::open(
            &path,
            FaultPlan {
                crash_after_bytes: Some(100),
                drop_syncs: vec![1],
                ..FaultPlan::default()
            },
        )
        .unwrap();
        f.append(b"one").unwrap();
        f.sync().unwrap(); // sync #0: real
        f.append(b"two").unwrap();
        f.sync().unwrap(); // sync #1: dropped, still "succeeds"
        assert!(f.append(&[0u8; 200]).is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
    }

    #[test]
    fn torn_tail_leaks_partial_write() {
        let path = temp_path("torn");
        let mut f = FaultyFile::open(
            &path,
            FaultPlan {
                crash_after_bytes: Some(10),
                torn_tail_bytes: 4,
                ..FaultPlan::default()
            },
        )
        .unwrap();
        f.append(b"abcdef").unwrap(); // 6 bytes pending
        assert!(f.append(b"ghijkl").is_err()); // budget 4 → crash
                                               // 6 pending + 4 of the cut write = 10 pending at crash; 4 leak.
        assert_eq!(std::fs::read(&path).unwrap(), b"abcd");
    }

    /// End-to-end: a WAL on faulty storage crashes mid-append; reopening
    /// the path with real storage recovers exactly the synced records
    /// and truncates the torn tail.
    #[test]
    fn wal_on_faulty_storage_recovers_synced_prefix() {
        let path = temp_path("e2e");
        let storage = Box::new(
            FaultyFile::open(
                &path,
                FaultPlan {
                    crash_after_bytes: Some(40),
                    torn_tail_bytes: 5,
                    ..FaultPlan::default()
                },
            )
            .unwrap(),
        );
        let (mut wal, _) = Wal::open(storage).unwrap();
        wal.append(b"durable rec", true).unwrap(); // 19 bytes, synced
        let err = wal.append(b"this one dies mid-flight", true);
        assert!(err.is_err());
        drop(wal);
        // Reboot: plain file storage over what actually hit the disk.
        let storage = Box::new(FileStorage::open(&path).unwrap());
        let (_, scan) = Wal::open(storage).unwrap();
        assert_eq!(scan.records, vec![b"durable rec".to_vec()]);
        assert!(scan.torn_bytes > 0, "the leaked tail was truncated");
    }
}
