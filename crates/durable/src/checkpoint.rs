//! Checkpoint files: atomically-written, checksummed snapshots.
//!
//! ## File format
//!
//! ```text
//! ┌──────────────┬──────────────┬────────────┬────────────┬─────────┐
//! │ magic 8 bytes│ version u32le│ len: u32le │ crc: u32le │ payload │
//! └──────────────┴──────────────┴────────────┴────────────┴─────────┘
//! ```
//!
//! ## Atomicity
//!
//! A checkpoint is written to `ckpt-<gen>.gsls.tmp` in full, fsync'd,
//! then renamed into place (rename is atomic on POSIX), and the
//! directory is fsync'd so the rename itself is durable. A crash at
//! any point leaves either the previous generation intact or the new
//! file complete — never a half-written visible checkpoint. Stray
//! `.tmp` files from a crash are deleted on open.
//!
//! Generations are numbered `ckpt-<gen>.gsls` / `wal-<gen>.log`; the
//! two newest generations are retained so that a newest checkpoint
//! that fails its checksum (e.g. latent media corruption) can fall
//! back to the previous one and replay forward through both WALs.

use crate::codec::crc32;
use crate::DurableError;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Leading magic of every checkpoint file.
pub const CKPT_MAGIC: &[u8; 8] = b"GSLSCKPT";
/// Current checkpoint format version.
pub const CKPT_VERSION: u32 = 1;

/// Path of generation `g`'s checkpoint file.
pub fn ckpt_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("ckpt-{gen:010}.gsls"))
}

/// Path of generation `g`'s write-ahead log.
pub fn wal_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen:010}.log"))
}

/// Parses a generation number out of a `prefix-<gen>suffix` file name.
fn parse_gen(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let rest = name.strip_prefix(prefix)?;
    let digits = rest.strip_suffix(suffix)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Generation numbers present in `dir`, sorted ascending.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Generations {
    /// Generations with a (visible) checkpoint file.
    pub checkpoints: Vec<u64>,
    /// Generations with a WAL file.
    pub wals: Vec<u64>,
}

/// Scans `dir` for checkpoint/WAL generations, deleting stray `.tmp`
/// files left by a crash mid-checkpoint.
pub fn scan_dir(dir: &Path) -> Result<Generations, DurableError> {
    let mut gens = Generations::default();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.ends_with(".tmp") {
            let _ = fs::remove_file(entry.path());
        } else if let Some(g) = parse_gen(name, "ckpt-", ".gsls") {
            gens.checkpoints.push(g);
        } else if let Some(g) = parse_gen(name, "wal-", ".log") {
            gens.wals.push(g);
        }
    }
    gens.checkpoints.sort_unstable();
    gens.wals.sort_unstable();
    Ok(gens)
}

/// Fsyncs `dir` itself so a just-completed rename survives power loss.
/// Best-effort: some filesystems refuse opening directories for sync.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Writes generation `gen`'s checkpoint atomically (temp file + fsync
/// + rename + directory fsync).
pub fn write_checkpoint(dir: &Path, gen: u64, payload: &[u8]) -> Result<(), DurableError> {
    let final_path = ckpt_path(dir, gen);
    let tmp_path = final_path.with_extension("gsls.tmp");
    let len = u32::try_from(payload.len())
        .map_err(|_| DurableError::Corrupt("checkpoint payload too large".into()))?;
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        f.write_all(CKPT_MAGIC)?;
        f.write_all(&CKPT_VERSION.to_le_bytes())?;
        f.write_all(&len.to_le_bytes())?;
        f.write_all(&crc32(payload).to_le_bytes())?;
        f.write_all(payload)?;
        f.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir);
    Ok(())
}

/// Reads and verifies a checkpoint file, returning its payload.
pub fn read_checkpoint(path: &Path) -> Result<Vec<u8>, DurableError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 20 {
        return Err(DurableError::Corrupt("checkpoint file truncated".into()));
    }
    if &bytes[..8] != CKPT_MAGIC {
        return Err(DurableError::Corrupt("bad checkpoint magic".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != CKPT_VERSION {
        return Err(DurableError::Corrupt(format!(
            "unsupported checkpoint version {version}"
        )));
    }
    let len = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    let payload = &bytes[20..];
    if payload.len() != len {
        return Err(DurableError::Corrupt(format!(
            "checkpoint payload length {} != header {len}",
            payload.len()
        )));
    }
    if crc32(payload) != crc {
        return Err(DurableError::Corrupt("checkpoint checksum mismatch".into()));
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gsls_ckpt_test_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = temp_dir("roundtrip");
        write_checkpoint(&dir, 3, b"snapshot payload").unwrap();
        let got = read_checkpoint(&ckpt_path(&dir, 3)).unwrap();
        assert_eq!(got, b"snapshot payload");
        let gens = scan_dir(&dir).unwrap();
        assert_eq!(gens.checkpoints, vec![3]);
    }

    #[test]
    fn corrupt_checkpoints_rejected() {
        let dir = temp_dir("corrupt");
        write_checkpoint(&dir, 1, b"good bytes here").unwrap();
        let path = ckpt_path(&dir, 1);
        let clean = fs::read(&path).unwrap();

        // Truncations at every byte of the header and payload.
        for cut in 0..clean.len() {
            fs::write(&path, &clean[..cut]).unwrap();
            assert!(read_checkpoint(&path).is_err(), "cut {cut}");
        }
        // Flipped payload byte → checksum mismatch.
        let mut bad = clean.clone();
        *bad.last_mut().unwrap() ^= 1;
        fs::write(&path, &bad).unwrap();
        assert!(read_checkpoint(&path).is_err());
        // Wrong magic.
        let mut bad = clean.clone();
        bad[0] = b'X';
        fs::write(&path, &bad).unwrap();
        assert!(read_checkpoint(&path).is_err());
        // Future version.
        let mut bad = clean.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        fs::write(&path, &bad).unwrap();
        assert!(read_checkpoint(&path).is_err());
        // Intact file still reads after restoring.
        fs::write(&path, &clean).unwrap();
        assert!(read_checkpoint(&path).is_ok());
    }

    #[test]
    fn scan_cleans_tmp_and_ignores_noise() {
        let dir = temp_dir("scan");
        write_checkpoint(&dir, 7, b"x").unwrap();
        write_checkpoint(&dir, 9, b"y").unwrap();
        fs::write(wal_path(&dir, 9), b"").unwrap();
        fs::write(dir.join("ckpt-0000000008.gsls.tmp"), b"half-written").unwrap();
        fs::write(dir.join("README"), b"not ours").unwrap();
        fs::write(dir.join("ckpt-abc.gsls"), b"not a gen").unwrap();
        let gens = scan_dir(&dir).unwrap();
        assert_eq!(gens.checkpoints, vec![7, 9]);
        assert_eq!(gens.wals, vec![9]);
        assert!(!dir.join("ckpt-0000000008.gsls.tmp").exists());
    }
}
