//! Stable binary encoding of terms, atoms, literals and clauses.
//!
//! The durability layer (`gsls-durable`) persists commit batches and
//! checkpoints across process restarts, so the encoding must not depend
//! on anything process-local: [`crate::TermId`]s and [`crate::Symbol`]s
//! are arena indices that differ between runs. This codec therefore
//! writes terms **structurally** — symbols by name, applications by
//! recursion — and decoding re-interns into whatever [`TermStore`] the
//! reader supplies. Round-tripping preserves structure (and therefore
//! hash-consed identity *within* the destination store), not raw ids.
//!
//! Variables are clause-scoped: [`encode_clause`] writes each variable
//! as its first-occurrence ordinal plus display name, and
//! [`decode_clause`] allocates fresh store variables per clause, so two
//! decoded clauses never alias variables — exactly the invariant the
//! parser establishes for textual programs.
//!
//! The format is byte-oriented and self-delimiting:
//!
//! * integers are LEB128 varints ([`write_uv`] / [`read_uv`]);
//! * strings are a varint length followed by UTF-8 bytes;
//! * terms are a tag byte (`0` variable, `1` application) followed by
//!   the payload.
//!
//! Framing, checksums and versioning live one layer up, in the
//! durability crate — this module only defines payload bytes.

use crate::atom::{Atom, Literal, Sign};
use crate::clause::Clause;
use crate::fxhash::FxHashMap;
use crate::term::{Term, TermId, TermStore};
use std::fmt;

/// Decoding failure: the byte stream is truncated or malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended inside a value.
    Truncated,
    /// An unknown tag byte was read.
    BadTag(u8),
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// A varint exceeded 64 bits or a length exceeded the input.
    BadLength,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            WireError::BadUtf8 => write!(f, "string is not valid UTF-8"),
            WireError::BadLength => write!(f, "length prefix out of range"),
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over an encoded byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads one byte.
    pub fn byte(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

/// Appends `v` as a LEB128 varint.
pub fn write_uv(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint.
pub fn read_uv(r: &mut WireReader<'_>) -> Result<u64, WireError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = r.byte()?;
        if shift == 63 && byte > 1 {
            return Err(WireError::BadLength);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(WireError::BadLength);
        }
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn write_str(out: &mut Vec<u8>, s: &str) {
    write_uv(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string.
pub fn read_str<'a>(r: &mut WireReader<'a>) -> Result<&'a str, WireError> {
    let len = read_uv(r)?;
    let len = usize::try_from(len).map_err(|_| WireError::BadLength)?;
    if len > r.remaining() {
        return Err(WireError::Truncated);
    }
    std::str::from_utf8(r.bytes(len)?).map_err(|_| WireError::BadUtf8)
}

const TAG_VAR: u8 = 0;
const TAG_APP: u8 = 1;

/// Per-scope decoding state: maps encoded variable ordinals to fresh
/// variables of the destination store. One scope per clause (or goal);
/// see the module docs.
#[derive(Debug, Default)]
pub struct VarScope {
    map: FxHashMap<u64, TermId>,
}

impl VarScope {
    /// An empty scope.
    pub fn new() -> Self {
        VarScope::default()
    }
}

/// Encoding state mirroring [`VarScope`]: assigns scope-local ordinals
/// to variables in first-encounter order, so the byte stream never
/// leaks store-global variable indices.
#[derive(Debug, Default)]
struct VarIds {
    map: FxHashMap<crate::term::Var, u64>,
}

fn encode_term_in(store: &TermStore, t: TermId, ids: &mut VarIds, out: &mut Vec<u8>) {
    match store.term(t) {
        Term::Var(v) => {
            let next = ids.map.len() as u64;
            let ord = *ids.map.entry(*v).or_insert(next);
            out.push(TAG_VAR);
            write_uv(out, ord);
            if ord == next {
                // First occurrence carries the display name.
                write_str(out, &store.var_name(*v));
            }
        }
        Term::App(sym, args) => {
            out.push(TAG_APP);
            write_str(out, store.symbol_name(*sym));
            write_uv(out, args.len() as u64);
            let args: Vec<TermId> = args.to_vec();
            for a in args {
                encode_term_in(store, a, ids, out);
            }
        }
    }
}

fn decode_term_in(
    store: &mut TermStore,
    r: &mut WireReader<'_>,
    scope: &mut VarScope,
) -> Result<TermId, WireError> {
    match r.byte()? {
        TAG_VAR => {
            let ord = read_uv(r)?;
            if let Some(&t) = scope.map.get(&ord) {
                return Ok(t);
            }
            if ord != scope.map.len() as u64 {
                // Ordinals are dense and first-occurrence ordered; a
                // gap means the stream is corrupt.
                return Err(WireError::BadLength);
            }
            let name = read_str(r)?.to_owned();
            let t = store.fresh_var(Some(&name));
            scope.map.insert(ord, t);
            Ok(t)
        }
        TAG_APP => {
            let name = read_str(r)?.to_owned();
            let arity = read_uv(r)?;
            if arity > r.remaining() as u64 {
                // Each argument costs at least one byte.
                return Err(WireError::BadLength);
            }
            let mut args = Vec::with_capacity(arity as usize);
            for _ in 0..arity {
                args.push(decode_term_in(store, r, scope)?);
            }
            let sym = store.intern_symbol(&name);
            Ok(store.app(sym, &args))
        }
        t => Err(WireError::BadTag(t)),
    }
}

/// Encodes one term in its own variable scope.
pub fn encode_term(store: &TermStore, t: TermId, out: &mut Vec<u8>) {
    encode_term_in(store, t, &mut VarIds::default(), out);
}

/// Decodes one term, interning into `store`; variables resolve through
/// the caller's `scope`.
pub fn decode_term(
    store: &mut TermStore,
    r: &mut WireReader<'_>,
    scope: &mut VarScope,
) -> Result<TermId, WireError> {
    decode_term_in(store, r, scope)
}

fn encode_atom_in(store: &TermStore, atom: &Atom, ids: &mut VarIds, out: &mut Vec<u8>) {
    write_str(out, store.symbol_name(atom.pred));
    write_uv(out, atom.args.len() as u64);
    for &a in atom.args.iter() {
        encode_term_in(store, a, ids, out);
    }
}

fn decode_atom_in(
    store: &mut TermStore,
    r: &mut WireReader<'_>,
    scope: &mut VarScope,
) -> Result<Atom, WireError> {
    let name = read_str(r)?.to_owned();
    let arity = read_uv(r)?;
    if arity > r.remaining() as u64 {
        return Err(WireError::BadLength);
    }
    let mut args = Vec::with_capacity(arity as usize);
    for _ in 0..arity {
        args.push(decode_term_in(store, r, scope)?);
    }
    let sym = store.intern_symbol(&name);
    Ok(Atom::new(sym, args))
}

/// Encodes one atom in its own variable scope (ground atoms — the
/// common WAL case — have no scope to share anyway).
pub fn encode_atom(store: &TermStore, atom: &Atom, out: &mut Vec<u8>) {
    encode_atom_in(store, atom, &mut VarIds::default(), out);
}

/// Decodes one atom encoded by [`encode_atom`].
pub fn decode_atom(store: &mut TermStore, r: &mut WireReader<'_>) -> Result<Atom, WireError> {
    decode_atom_in(store, r, &mut VarScope::new())
}

/// Encodes a clause: head, body length, then each literal as a sign
/// byte plus atom, all sharing one variable scope.
pub fn encode_clause(store: &TermStore, clause: &Clause, out: &mut Vec<u8>) {
    let mut ids = VarIds::default();
    encode_atom_in(store, &clause.head, &mut ids, out);
    write_uv(out, clause.body.len() as u64);
    for lit in &clause.body {
        out.push(match lit.sign {
            Sign::Pos => 0,
            Sign::Neg => 1,
        });
        encode_atom_in(store, &lit.atom, &mut ids, out);
    }
}

/// Decodes a clause encoded by [`encode_clause`], allocating fresh
/// variables in `store` for the clause's scope.
pub fn decode_clause(store: &mut TermStore, r: &mut WireReader<'_>) -> Result<Clause, WireError> {
    let mut scope = VarScope::new();
    let head = decode_atom_in(store, r, &mut scope)?;
    let body_len = read_uv(r)?;
    if body_len > r.remaining() as u64 {
        return Err(WireError::BadLength);
    }
    let mut body = Vec::with_capacity(body_len as usize);
    for _ in 0..body_len {
        let atom_of = |sign, atom| Literal { sign, atom };
        let sign = match r.byte()? {
            0 => Sign::Pos,
            1 => Sign::Neg,
            t => return Err(WireError::BadTag(t)),
        };
        let atom = decode_atom_in(store, r, &mut scope)?;
        body.push(atom_of(sign, atom));
    }
    Ok(Clause::new(head, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn roundtrip_program(src: &str) {
        let mut store = TermStore::new();
        let program = parse_program(&mut store, src).expect("source parses");
        let mut buf = Vec::new();
        for c in program.clauses() {
            encode_clause(&store, c, &mut buf);
        }
        // Decode into a *fresh* store: ids must not be assumed stable.
        let mut store2 = TermStore::new();
        let mut r = WireReader::new(&buf);
        let mut rendered = Vec::new();
        while !r.is_empty() {
            let c = decode_clause(&mut store2, &mut r).expect("clause decodes");
            rendered.push(c.display(&store2));
        }
        let want: Vec<String> = program
            .clauses()
            .iter()
            .map(|c| c.display(&store))
            .collect();
        assert_eq!(rendered, want, "structural round-trip via display");
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let samples = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &samples {
            buf.clear();
            write_uv(&mut buf, v);
            let mut r = WireReader::new(&buf);
            assert_eq!(read_uv(&mut r).unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_overlong_rejected() {
        // 11 continuation bytes can encode more than 64 bits.
        let buf = [0xffu8; 11];
        let mut r = WireReader::new(&buf);
        assert!(read_uv(&mut r).is_err());
    }

    #[test]
    fn string_roundtrip_and_truncation() {
        let mut buf = Vec::new();
        write_str(&mut buf, "win_grid");
        let mut r = WireReader::new(&buf);
        assert_eq!(read_str(&mut r).unwrap(), "win_grid");
        let mut r = WireReader::new(&buf[..4]);
        assert_eq!(read_str(&mut r), Err(WireError::Truncated));
    }

    #[test]
    fn clause_roundtrips() {
        roundtrip_program("win(X) :- move(X, Y), ~win(Y). move(a, b). p.");
        roundtrip_program("t(X, Z) :- e(X, Y), t(Y, Z). u(X) :- ~f(X).");
        roundtrip_program("nat(0). nat(s(X)) :- nat(X).");
    }

    #[test]
    fn repeated_variables_share_one_binding() {
        let mut store = TermStore::new();
        let program = parse_program(&mut store, "q(X) :- t(X, X).").unwrap();
        let mut buf = Vec::new();
        encode_clause(&store, &program.clauses()[0], &mut buf);
        let mut store2 = TermStore::new();
        let c = decode_clause(&mut store2, &mut WireReader::new(&buf)).unwrap();
        let head_x = c.head.args[0];
        let body = &c.body[0].atom;
        assert_eq!(body.args[0], head_x);
        assert_eq!(body.args[1], head_x);
    }

    #[test]
    fn clauses_get_fresh_scopes() {
        let mut store = TermStore::new();
        let program = parse_program(&mut store, "p(X). q(X).").unwrap();
        let mut buf = Vec::new();
        for c in program.clauses() {
            encode_clause(&store, c, &mut buf);
        }
        let mut store2 = TermStore::new();
        let mut r = WireReader::new(&buf);
        let c1 = decode_clause(&mut store2, &mut r).unwrap();
        let c2 = decode_clause(&mut store2, &mut r).unwrap();
        assert_ne!(
            c1.head.args[0], c2.head.args[0],
            "distinct clauses must not alias variables"
        );
    }

    #[test]
    fn ground_atom_roundtrip() {
        let mut store = TermStore::new();
        let a = store.constant("a");
        let b = store.constant("b");
        let e = store.intern_symbol("e");
        let atom = Atom::new(e, vec![a, b]);
        let mut buf = Vec::new();
        encode_atom(&store, &atom, &mut buf);
        let mut store2 = TermStore::new();
        let got = decode_atom(&mut store2, &mut WireReader::new(&buf)).unwrap();
        assert_eq!(got.display(&store2), "e(a, b)");
    }

    #[test]
    fn corrupt_bytes_error_not_panic() {
        let mut store = TermStore::new();
        let program = parse_program(&mut store, "win(X) :- move(X, Y), ~win(Y).").unwrap();
        let mut buf = Vec::new();
        encode_clause(&store, &program.clauses()[0], &mut buf);
        // Every truncation errors cleanly.
        for cut in 0..buf.len() {
            let mut s = TermStore::new();
            assert!(decode_clause(&mut s, &mut WireReader::new(&buf[..cut])).is_err());
        }
        // Flipping each byte either still decodes (to something) or
        // errors — never panics.
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0xff;
            let mut s = TermStore::new();
            let _ = decode_clause(&mut s, &mut WireReader::new(&bad));
        }
    }
}
