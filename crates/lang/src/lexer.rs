//! Tokenizer for the Prolog-style surface syntax.
//!
//! The grammar (see [`crate::parser`]) uses:
//!
//! * lowercase identifiers / digit strings — constants, function and
//!   predicate symbols (`win`, `s`, `0`, `42`);
//! * uppercase or `_`-initial identifiers — variables (`X`, `_Y3`);
//! * punctuation `(` `)` `,` `.` `:-` `?-`;
//! * negation `~` or `\+`;
//! * `%` line comments and `/* ... */` block comments.

use crate::error::ParseError;

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Lowercase identifier or number: symbol name.
    Ident(String),
    /// Uppercase/underscore-initial identifier: variable name.
    Variable(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:-`
    If,
    /// `?-`
    Query,
    /// `~` or `\+`
    Not,
    /// End of input.
    Eof,
}

/// A token paired with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Tokenizes `input` completely (including a trailing [`Token::Eof`]).
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            out.push(Spanned {
                token: $tok,
                line: $l,
                col: $c,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let (tl, tc) = (line, col);
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                i += 1;
                col += 1;
            }
            '%' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(ParseError::new(tl, tc, "unterminated block comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            '(' => {
                push!(Token::LParen, tl, tc);
                i += 1;
                col += 1;
            }
            ')' => {
                push!(Token::RParen, tl, tc);
                i += 1;
                col += 1;
            }
            ',' => {
                push!(Token::Comma, tl, tc);
                i += 1;
                col += 1;
            }
            '.' => {
                push!(Token::Dot, tl, tc);
                i += 1;
                col += 1;
            }
            '~' => {
                push!(Token::Not, tl, tc);
                i += 1;
                col += 1;
            }
            '\\' if i + 1 < bytes.len() && bytes[i + 1] == b'+' => {
                push!(Token::Not, tl, tc);
                i += 2;
                col += 2;
            }
            ':' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                push!(Token::If, tl, tc);
                i += 2;
                col += 2;
            }
            '?' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                push!(Token::Query, tl, tc);
                i += 2;
                col += 2;
            }
            c if c.is_ascii_lowercase() || c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                let text = &input[start..i];
                col += (i - start) as u32;
                push!(Token::Ident(text.to_owned()), tl, tc);
            }
            c if c.is_ascii_uppercase() || c == '_' => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                let text = &input[start..i];
                col += (i - start) as u32;
                push!(Token::Variable(text.to_owned()), tl, tc);
            }
            other => {
                return Err(ParseError::new(
                    tl,
                    tc,
                    format!("unexpected character {other:?}"),
                ));
            }
        }
    }
    out.push(Spanned {
        token: Token::Eof,
        line,
        col,
    });
    Ok(out)
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn simple_fact() {
        assert_eq!(
            toks("p(a)."),
            vec![
                Token::Ident("p".into()),
                Token::LParen,
                Token::Ident("a".into()),
                Token::RParen,
                Token::Dot,
                Token::Eof
            ]
        );
    }

    #[test]
    fn variables_and_negation() {
        assert_eq!(
            toks("~p(X), \\+ q(_Y)"),
            vec![
                Token::Not,
                Token::Ident("p".into()),
                Token::LParen,
                Token::Variable("X".into()),
                Token::RParen,
                Token::Comma,
                Token::Not,
                Token::Ident("q".into()),
                Token::LParen,
                Token::Variable("_Y".into()),
                Token::RParen,
                Token::Eof
            ]
        );
    }

    #[test]
    fn rule_and_query_arrows() {
        assert_eq!(
            toks("p :- q. ?- p."),
            vec![
                Token::Ident("p".into()),
                Token::If,
                Token::Ident("q".into()),
                Token::Dot,
                Token::Query,
                Token::Ident("p".into()),
                Token::Dot,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("p. % comment\nq. /* block\ncomment */ r."),
            vec![
                Token::Ident("p".into()),
                Token::Dot,
                Token::Ident("q".into()),
                Token::Dot,
                Token::Ident("r".into()),
                Token::Dot,
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers_are_idents() {
        assert_eq!(
            toks("s(0)"),
            vec![
                Token::Ident("s".into()),
                Token::LParen,
                Token::Ident("0".into()),
                Token::RParen,
                Token::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let ts = tokenize("p.\n q.").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[2].line, ts[2].col), (2, 2)); // q on line 2 col 2
    }

    #[test]
    fn unexpected_char_errors() {
        let e = tokenize("p @ q").unwrap_err();
        assert!(e.message.contains("unexpected character"));
        assert_eq!(e.col, 3);
    }

    #[test]
    fn unterminated_block_comment_errors() {
        let e = tokenize("/* oops").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn empty_input_gives_eof() {
        assert_eq!(toks(""), vec![Token::Eof]);
    }
}
