//! Request/response frames of the `gsls-serve` wire protocol.
//!
//! This module defines the **payload** bytes of one protocol message;
//! transport framing (length prefix + CRC) lives in the server crate,
//! exactly as the durability crate frames WAL records around the
//! [`crate::wire`] payload codec. Every encoded message starts with a
//! version byte ([`PROTO_VERSION`]) so incompatible future revisions
//! are detected instead of misparsed.
//!
//! Update batches travel **structurally** ([`crate::wire::encode_clause`]
//! / [`crate::wire::encode_atom`]): the client encodes against its own
//! [`TermStore`], the server decodes into the target session's store, so
//! no arena indices ever cross the wire. Queries travel as goal text —
//! the server compiles them against an immutable snapshot store, which
//! requires a parse on that side anyway. Responses are store-free
//! (answers are rendered substitutions), so [`decode_response`] needs no
//! store at all.
//!
//! Every mutating or reading request carries a [`GovernOpts`]: optional
//! deadline (milliseconds, relative to server receipt), fuel, memory and
//! clause budgets that the server maps 1:1 onto the engine's
//! `CommitOpts`/`QueryOpts`, so governance composes end-to-end and a
//! slow client's commit times out as a rolled-back transaction.

use crate::atom::Atom;
use crate::clause::Clause;
use crate::term::TermStore;
use crate::wire::{
    decode_atom, decode_clause, encode_atom, encode_clause, read_str, read_uv, write_str, write_uv,
    WireError, WireReader,
};

/// Protocol revision. Bumped on any incompatible change to the frame
/// payloads; a decoder seeing an unknown version rejects the message
/// with [`WireError::BadTag`] instead of guessing.
pub const PROTO_VERSION: u8 = 1;

/// Resource-governance fields attached to a request. All optional;
/// `deadline_ms` is relative to the moment the server receives the
/// request (clients and servers do not share a clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GovernOpts {
    /// Wall-clock budget in milliseconds from server receipt.
    pub deadline_ms: Option<u64>,
    /// Governance-check fuel (deterministic fault injection).
    pub fuel: Option<u64>,
    /// Memory budget in bytes (commits only).
    pub max_memory_bytes: Option<u64>,
    /// Ground-clause cap (commits only).
    pub max_clauses: Option<u64>,
}

/// Three-valued verdict tag, store- and engine-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruthTag {
    /// The query (or instance) is true in the well-founded model.
    True,
    /// False in the well-founded model.
    False,
    /// Undefined (the third truth value).
    Undefined,
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Selects the session this connection talks to (default:
    /// `"default"`). Sessions are created on first use.
    Open {
        /// Session name (a directory name under the server's data root).
        session: String,
    },
    /// One transactional update batch: rules, asserted facts, retracted
    /// facts, applied in that order as a single commit.
    Commit {
        /// Rule clauses (including facts committed as rules).
        rules: Vec<Clause>,
        /// Ground facts to assert.
        asserts: Vec<Atom>,
        /// Ground facts to retract.
        retracts: Vec<Atom>,
        /// Governance budget for this commit.
        opts: GovernOpts,
    },
    /// A query, e.g. `"?- win(X)."`, executed on a committed snapshot.
    Query {
        /// Goal text.
        goal: String,
        /// Governance budget for the enumeration.
        opts: GovernOpts,
    },
    /// Scrapes the session's metrics registry (Prometheus text format).
    Metrics,
    /// Drains the session's trace-event ring (one event per line).
    Events,
    /// Forces a checkpoint + WAL rotation.
    Checkpoint,
    /// Asks the server to drain and stop.
    Shutdown,
}

/// Discriminates [`Request`]s without a full decode — connection
/// threads route on this before the (store-coupled) payload decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// [`Request::Ping`]
    Ping,
    /// [`Request::Open`]
    Open,
    /// [`Request::Commit`]
    Commit,
    /// [`Request::Query`]
    Query,
    /// [`Request::Metrics`]
    Metrics,
    /// [`Request::Events`]
    Events,
    /// [`Request::Checkpoint`]
    Checkpoint,
    /// [`Request::Shutdown`]
    Shutdown,
}

/// What a failed request failed *as* — coarse classes a client can
/// dispatch on without parsing the message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed frame or payload.
    Protocol,
    /// Program/goal text did not parse.
    Parse,
    /// The batch was rejected by validation or static analysis.
    Rejected,
    /// Governance tripped (deadline, cancellation, budget); for commits
    /// the transaction rolled back completely.
    Interrupted,
    /// The session is poisoned and needs recovery.
    Poisoned,
    /// Request shape not supported (e.g. non-streaming engine).
    Unsupported,
    /// The server is at its connection cap.
    Busy,
    /// The server is draining for shutdown.
    Shutdown,
    /// Anything else (I/O, internal invariant).
    Internal,
}

/// Commit statistics mirrored onto the wire (u64 so the frame layout
/// does not depend on the server's `usize`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommitNumbers {
    /// Rules appended to the program.
    pub rules_added: u64,
    /// Genuinely new facts grounded in.
    pub facts_asserted: u64,
    /// Previously-retracted facts switched back on.
    pub facts_reenabled: u64,
    /// Fact clauses switched off.
    pub facts_retracted: u64,
    /// Ground atoms added by this commit.
    pub new_atoms: u64,
    /// Ground clauses added by this commit.
    pub new_clauses: u64,
}

/// One server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Open`].
    Opened {
        /// The session now bound to this connection.
        session: String,
        /// Its commit epoch at open time.
        epoch: u64,
    },
    /// Reply to a successful [`Request::Commit`] — sent only after the
    /// batch is fsync-durable (the group-commit ack contract).
    Committed {
        /// Session epoch after this commit.
        epoch: u64,
        /// What the commit did.
        stats: CommitNumbers,
    },
    /// Reply to [`Request::Query`].
    Answers {
        /// Overall three-valued verdict.
        truth: TruthTag,
        /// Rendered substitutions whose instances are true.
        answers: Vec<String>,
        /// Rendered substitutions whose instances are undefined.
        undefined: Vec<String>,
        /// Whether governance stopped the enumeration early (the
        /// answers above are a valid partial set).
        interrupted: bool,
    },
    /// Reply to [`Request::Metrics`] / [`Request::Events`] (and
    /// checkpoint/shutdown acknowledgements carrying no numbers).
    Text(String),
    /// Any failure. For commits the session has already rolled back.
    Error {
        /// Coarse failure class.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

const REQ_PING: u8 = 0;
const REQ_OPEN: u8 = 1;
const REQ_COMMIT: u8 = 2;
const REQ_QUERY: u8 = 3;
const REQ_METRICS: u8 = 4;
const REQ_EVENTS: u8 = 5;
const REQ_CHECKPOINT: u8 = 6;
const REQ_SHUTDOWN: u8 = 7;

const RESP_PONG: u8 = 0;
const RESP_OPENED: u8 = 1;
const RESP_COMMITTED: u8 = 2;
const RESP_ANSWERS: u8 = 3;
const RESP_TEXT: u8 = 4;
const RESP_ERROR: u8 = 5;

fn write_opt_uv(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            write_uv(out, v);
        }
        None => out.push(0),
    }
}

fn read_opt_uv(r: &mut WireReader<'_>) -> Result<Option<u64>, WireError> {
    match r.byte()? {
        0 => Ok(None),
        1 => Ok(Some(read_uv(r)?)),
        t => Err(WireError::BadTag(t)),
    }
}

fn write_govern(out: &mut Vec<u8>, g: &GovernOpts) {
    write_opt_uv(out, g.deadline_ms);
    write_opt_uv(out, g.fuel);
    write_opt_uv(out, g.max_memory_bytes);
    write_opt_uv(out, g.max_clauses);
}

fn read_govern(r: &mut WireReader<'_>) -> Result<GovernOpts, WireError> {
    Ok(GovernOpts {
        deadline_ms: read_opt_uv(r)?,
        fuel: read_opt_uv(r)?,
        max_memory_bytes: read_opt_uv(r)?,
        max_clauses: read_opt_uv(r)?,
    })
}

/// Bounds a decoded element count by the bytes actually remaining, so a
/// corrupt count can never drive a huge allocation (each element costs
/// at least one byte).
fn checked_count(r: &WireReader<'_>, n: u64) -> Result<usize, WireError> {
    if n > r.remaining() as u64 {
        return Err(WireError::BadLength);
    }
    Ok(n as usize)
}

/// Encodes one request (version byte first). Clauses and atoms are
/// encoded structurally against `store`.
pub fn encode_request(store: &TermStore, req: &Request, out: &mut Vec<u8>) {
    out.push(PROTO_VERSION);
    match req {
        Request::Ping => out.push(REQ_PING),
        Request::Open { session } => {
            out.push(REQ_OPEN);
            write_str(out, session);
        }
        Request::Commit {
            rules,
            asserts,
            retracts,
            opts,
        } => {
            out.push(REQ_COMMIT);
            write_govern(out, opts);
            write_uv(out, rules.len() as u64);
            for c in rules {
                encode_clause(store, c, out);
            }
            write_uv(out, asserts.len() as u64);
            for a in asserts {
                encode_atom(store, a, out);
            }
            write_uv(out, retracts.len() as u64);
            for a in retracts {
                encode_atom(store, a, out);
            }
        }
        Request::Query { goal, opts } => {
            out.push(REQ_QUERY);
            write_govern(out, opts);
            write_str(out, goal);
        }
        Request::Metrics => out.push(REQ_METRICS),
        Request::Events => out.push(REQ_EVENTS),
        Request::Checkpoint => out.push(REQ_CHECKPOINT),
        Request::Shutdown => out.push(REQ_SHUTDOWN),
    }
}

/// Reads the version and tag bytes only — the cheap routing peek a
/// connection thread performs before handing the payload to whichever
/// thread owns the right store.
pub fn peek_request_kind(bytes: &[u8]) -> Result<RequestKind, WireError> {
    let mut r = WireReader::new(bytes);
    let version = r.byte()?;
    if version != PROTO_VERSION {
        return Err(WireError::BadTag(version));
    }
    Ok(match r.byte()? {
        REQ_PING => RequestKind::Ping,
        REQ_OPEN => RequestKind::Open,
        REQ_COMMIT => RequestKind::Commit,
        REQ_QUERY => RequestKind::Query,
        REQ_METRICS => RequestKind::Metrics,
        REQ_EVENTS => RequestKind::Events,
        REQ_CHECKPOINT => RequestKind::Checkpoint,
        REQ_SHUTDOWN => RequestKind::Shutdown,
        t => return Err(WireError::BadTag(t)),
    })
}

/// Decodes one request, interning clause/atom payloads into `store`.
/// The whole payload must be consumed — trailing bytes are rejected.
pub fn decode_request(store: &mut TermStore, bytes: &[u8]) -> Result<Request, WireError> {
    let mut r = WireReader::new(bytes);
    let version = r.byte()?;
    if version != PROTO_VERSION {
        return Err(WireError::BadTag(version));
    }
    let req = match r.byte()? {
        REQ_PING => Request::Ping,
        REQ_OPEN => Request::Open {
            session: read_str(&mut r)?.to_owned(),
        },
        REQ_COMMIT => {
            let opts = read_govern(&mut r)?;
            let n = read_uv(&mut r)?;
            let n = checked_count(&r, n)?;
            let mut rules = Vec::with_capacity(n);
            for _ in 0..n {
                rules.push(decode_clause(store, &mut r)?);
            }
            let n = read_uv(&mut r)?;
            let n = checked_count(&r, n)?;
            let mut asserts = Vec::with_capacity(n);
            for _ in 0..n {
                asserts.push(decode_atom(store, &mut r)?);
            }
            let n = read_uv(&mut r)?;
            let n = checked_count(&r, n)?;
            let mut retracts = Vec::with_capacity(n);
            for _ in 0..n {
                retracts.push(decode_atom(store, &mut r)?);
            }
            Request::Commit {
                rules,
                asserts,
                retracts,
                opts,
            }
        }
        REQ_QUERY => {
            let opts = read_govern(&mut r)?;
            Request::Query {
                goal: read_str(&mut r)?.to_owned(),
                opts,
            }
        }
        REQ_METRICS => Request::Metrics,
        REQ_EVENTS => Request::Events,
        REQ_CHECKPOINT => Request::Checkpoint,
        REQ_SHUTDOWN => Request::Shutdown,
        t => return Err(WireError::BadTag(t)),
    };
    if !r.is_empty() {
        return Err(WireError::BadLength);
    }
    Ok(req)
}

fn write_truth(out: &mut Vec<u8>, t: TruthTag) {
    out.push(match t {
        TruthTag::True => 0,
        TruthTag::False => 1,
        TruthTag::Undefined => 2,
    });
}

fn read_truth(r: &mut WireReader<'_>) -> Result<TruthTag, WireError> {
    Ok(match r.byte()? {
        0 => TruthTag::True,
        1 => TruthTag::False,
        2 => TruthTag::Undefined,
        t => return Err(WireError::BadTag(t)),
    })
}

fn write_error_kind(out: &mut Vec<u8>, k: ErrorKind) {
    out.push(match k {
        ErrorKind::Protocol => 0,
        ErrorKind::Parse => 1,
        ErrorKind::Rejected => 2,
        ErrorKind::Interrupted => 3,
        ErrorKind::Poisoned => 4,
        ErrorKind::Unsupported => 5,
        ErrorKind::Busy => 6,
        ErrorKind::Shutdown => 7,
        ErrorKind::Internal => 8,
    });
}

fn read_error_kind(r: &mut WireReader<'_>) -> Result<ErrorKind, WireError> {
    Ok(match r.byte()? {
        0 => ErrorKind::Protocol,
        1 => ErrorKind::Parse,
        2 => ErrorKind::Rejected,
        3 => ErrorKind::Interrupted,
        4 => ErrorKind::Poisoned,
        5 => ErrorKind::Unsupported,
        6 => ErrorKind::Busy,
        7 => ErrorKind::Shutdown,
        8 => ErrorKind::Internal,
        t => return Err(WireError::BadTag(t)),
    })
}

fn write_strings(out: &mut Vec<u8>, v: &[String]) {
    write_uv(out, v.len() as u64);
    for s in v {
        write_str(out, s);
    }
}

fn read_strings(r: &mut WireReader<'_>) -> Result<Vec<String>, WireError> {
    let n = read_uv(r)?;
    let n = checked_count(r, n)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_str(r)?.to_owned());
    }
    Ok(out)
}

/// Encodes one response (version byte first). Responses are store-free.
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    out.push(PROTO_VERSION);
    match resp {
        Response::Pong => out.push(RESP_PONG),
        Response::Opened { session, epoch } => {
            out.push(RESP_OPENED);
            write_str(out, session);
            write_uv(out, *epoch);
        }
        Response::Committed { epoch, stats } => {
            out.push(RESP_COMMITTED);
            write_uv(out, *epoch);
            write_uv(out, stats.rules_added);
            write_uv(out, stats.facts_asserted);
            write_uv(out, stats.facts_reenabled);
            write_uv(out, stats.facts_retracted);
            write_uv(out, stats.new_atoms);
            write_uv(out, stats.new_clauses);
        }
        Response::Answers {
            truth,
            answers,
            undefined,
            interrupted,
        } => {
            out.push(RESP_ANSWERS);
            write_truth(out, *truth);
            write_strings(out, answers);
            write_strings(out, undefined);
            out.push(u8::from(*interrupted));
        }
        Response::Text(s) => {
            out.push(RESP_TEXT);
            write_str(out, s);
        }
        Response::Error { kind, message } => {
            out.push(RESP_ERROR);
            write_error_kind(out, *kind);
            write_str(out, message);
        }
    }
}

/// Decodes one response. The whole payload must be consumed.
pub fn decode_response(bytes: &[u8]) -> Result<Response, WireError> {
    let mut r = WireReader::new(bytes);
    let version = r.byte()?;
    if version != PROTO_VERSION {
        return Err(WireError::BadTag(version));
    }
    let resp = match r.byte()? {
        RESP_PONG => Response::Pong,
        RESP_OPENED => Response::Opened {
            session: read_str(&mut r)?.to_owned(),
            epoch: read_uv(&mut r)?,
        },
        RESP_COMMITTED => Response::Committed {
            epoch: read_uv(&mut r)?,
            stats: CommitNumbers {
                rules_added: read_uv(&mut r)?,
                facts_asserted: read_uv(&mut r)?,
                facts_reenabled: read_uv(&mut r)?,
                facts_retracted: read_uv(&mut r)?,
                new_atoms: read_uv(&mut r)?,
                new_clauses: read_uv(&mut r)?,
            },
        },
        RESP_ANSWERS => Response::Answers {
            truth: read_truth(&mut r)?,
            answers: read_strings(&mut r)?,
            undefined: read_strings(&mut r)?,
            interrupted: match r.byte()? {
                0 => false,
                1 => true,
                t => return Err(WireError::BadTag(t)),
            },
        },
        RESP_TEXT => Response::Text(read_str(&mut r)?.to_owned()),
        RESP_ERROR => Response::Error {
            kind: read_error_kind(&mut r)?,
            message: read_str(&mut r)?.to_owned(),
        },
        t => return Err(WireError::BadTag(t)),
    };
    if !r.is_empty() {
        return Err(WireError::BadLength);
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn commit_request(store: &mut TermStore) -> Request {
        let batch = parse_program(store, "win(X) :- move(X, Y), ~win(Y). move(a, b).").unwrap();
        let facts = parse_program(store, "e(a, b). e(b, c).").unwrap();
        let asserts: Vec<Atom> = facts.clauses().iter().map(|c| c.head.clone()).collect();
        Request::Commit {
            rules: batch.clauses().to_vec(),
            asserts: asserts.clone(),
            retracts: vec![asserts[0].clone()],
            opts: GovernOpts {
                deadline_ms: Some(250),
                fuel: None,
                max_memory_bytes: Some(1 << 20),
                max_clauses: None,
            },
        }
    }

    #[test]
    fn request_roundtrip_structurally() {
        let mut store = TermStore::new();
        let req = commit_request(&mut store);
        let mut buf = Vec::new();
        encode_request(&store, &req, &mut buf);
        assert_eq!(peek_request_kind(&buf).unwrap(), RequestKind::Commit);
        let mut store2 = TermStore::new();
        let got = decode_request(&mut store2, &buf).unwrap();
        match (&req, &got) {
            (
                Request::Commit {
                    rules: r1,
                    asserts: a1,
                    retracts: t1,
                    opts: o1,
                },
                Request::Commit {
                    rules: r2,
                    asserts: a2,
                    retracts: t2,
                    opts: o2,
                },
            ) => {
                assert_eq!(o1, o2);
                let d1: Vec<String> = r1.iter().map(|c| c.display(&store)).collect();
                let d2: Vec<String> = r2.iter().map(|c| c.display(&store2)).collect();
                assert_eq!(d1, d2);
                assert_eq!(
                    a1.iter().map(|a| a.display(&store)).collect::<Vec<_>>(),
                    a2.iter().map(|a| a.display(&store2)).collect::<Vec<_>>()
                );
                assert_eq!(
                    t1.iter().map(|a| a.display(&store)).collect::<Vec<_>>(),
                    t2.iter().map(|a| a.display(&store2)).collect::<Vec<_>>()
                );
            }
            _ => panic!("kind changed in flight"),
        }
    }

    #[test]
    fn simple_requests_roundtrip() {
        let store = TermStore::new();
        for req in [
            Request::Ping,
            Request::Open {
                session: "tenant-7".into(),
            },
            Request::Query {
                goal: "?- win(X).".into(),
                opts: GovernOpts {
                    deadline_ms: Some(10),
                    ..GovernOpts::default()
                },
            },
            Request::Metrics,
            Request::Events,
            Request::Checkpoint,
            Request::Shutdown,
        ] {
            let mut buf = Vec::new();
            encode_request(&store, &req, &mut buf);
            let mut s2 = TermStore::new();
            assert_eq!(decode_request(&mut s2, &buf).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Pong,
            Response::Opened {
                session: "default".into(),
                epoch: 17,
            },
            Response::Committed {
                epoch: 18,
                stats: CommitNumbers {
                    rules_added: 1,
                    facts_asserted: 2,
                    facts_reenabled: 0,
                    facts_retracted: 3,
                    new_atoms: 40,
                    new_clauses: 41,
                },
            },
            Response::Answers {
                truth: TruthTag::Undefined,
                answers: vec!["X = a".into(), "X = b".into()],
                undefined: vec!["X = c".into()],
                interrupted: true,
            },
            Response::Text("gsls_commits 3\n".into()),
            Response::Error {
                kind: ErrorKind::Interrupted,
                message: "deadline exceeded in grounding".into(),
            },
        ] {
            let mut buf = Vec::new();
            encode_response(&resp, &mut buf);
            assert_eq!(decode_response(&buf).unwrap(), resp);
        }
    }

    #[test]
    fn version_mismatch_rejected() {
        let store = TermStore::new();
        let mut buf = Vec::new();
        encode_request(&store, &Request::Ping, &mut buf);
        buf[0] = PROTO_VERSION + 1;
        assert!(peek_request_kind(&buf).is_err());
        let mut s = TermStore::new();
        assert!(decode_request(&mut s, &buf).is_err());
        let mut buf = Vec::new();
        encode_response(&Response::Pong, &mut buf);
        buf[0] = 0xee;
        assert!(decode_response(&buf).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let store = TermStore::new();
        let mut buf = Vec::new();
        encode_request(&store, &Request::Metrics, &mut buf);
        buf.push(0);
        let mut s = TermStore::new();
        assert_eq!(
            decode_request(&mut s, &buf),
            Err(WireError::BadLength),
            "trailing bytes must be rejected"
        );
    }

    #[test]
    fn truncation_and_bitflips_never_panic() {
        let mut store = TermStore::new();
        let req = commit_request(&mut store);
        let mut buf = Vec::new();
        encode_request(&store, &req, &mut buf);
        for cut in 0..buf.len() {
            let mut s = TermStore::new();
            assert!(decode_request(&mut s, &buf[..cut]).is_err(), "cut {cut}");
        }
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0xff;
            let mut s = TermStore::new();
            let _ = decode_request(&mut s, &bad);
        }
    }
}
