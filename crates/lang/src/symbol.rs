//! Interned constant, function and predicate symbols.
//!
//! Every name occurring in a program — predicate symbols, function symbols
//! and constants — is interned once into a [`SymbolTable`] and referred to
//! by a copyable [`Symbol`] index. Symbol equality is `u32` equality.

use crate::fxhash::FxHashMap;
use std::fmt;

/// An interned symbol: index into a [`SymbolTable`].
///
/// Constants and function symbols share the symbol space; a constant is
/// simply a function symbol used with arity 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The raw index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only intern table mapping names to [`Symbol`]s.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<Box<str>>,
    map: FxHashMap<Box<str>, Symbol>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing symbol if already present.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.names.len()).expect("symbol table overflow"));
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Looks up a symbol without interning.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// Approximate heap footprint in bytes (O(1), estimate — assumes
    /// short names; see `TermStore::approx_bytes`).
    pub fn approx_bytes(&self) -> usize {
        self.names.capacity() * std::mem::size_of::<Box<str>>()
            + self.map.capacity() * (std::mem::size_of::<Box<str>>() + 8)
            + self.names.len() * 2 * 16
    }

    /// The textual name of `sym`.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this table.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all interned symbols in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_ref()))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("foo");
        let b = t.intern("foo");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        let mut t = SymbolTable::new();
        let a = t.intern("foo");
        let b = t.intern("bar");
        assert_ne!(a, b);
        assert_eq!(t.name(a), "foo");
        assert_eq!(t.name(b), "bar");
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.lookup("x").is_none());
        let s = t.intern("x");
        assert_eq!(t.lookup("x"), Some(s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_in_insertion_order() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        t.intern("c");
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_table() {
        let t = SymbolTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
