//! Programs and goals.

use crate::atom::{Literal, Pred};
use crate::clause::Clause;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::symbol::Symbol;
use crate::term::{Term, TermId, TermStore, Var};

/// A source position (1-based line and column), attached to clauses by
/// the parser so later passes (the `gsls-analyze` lints in particular)
/// can point diagnostics back at the offending source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// 1-based line of the clause's first token.
    pub line: u32,
    /// 1-based column of the clause's first token.
    pub col: u32,
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A normal logic program: a finite set of clauses with a predicate index.
///
/// Clauses built programmatically carry no [`Span`]; parsed clauses are
/// tagged with the position of their first token (a side-table aligned
/// with the clause list, so [`Clause`] itself — and everything hashed,
/// compared or serialized through it — is unaffected).
#[derive(Debug, Default, Clone)]
pub struct Program {
    clauses: Vec<Clause>,
    by_pred: FxHashMap<Pred, Vec<usize>>,
    /// `spans[i]` is the source position of `clauses[i]`, when known.
    spans: Vec<Option<Span>>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a program from clauses.
    pub fn from_clauses(clauses: impl IntoIterator<Item = Clause>) -> Self {
        let mut p = Program::new();
        for c in clauses {
            p.push(c);
        }
        p
    }

    /// Adds a clause (no source position).
    pub fn push(&mut self, clause: Clause) {
        self.push_spanned(clause, None);
    }

    /// Adds a clause together with its source position.
    pub fn push_spanned(&mut self, clause: Clause, span: Option<Span>) {
        let idx = self.clauses.len();
        self.by_pred
            .entry(clause.head.pred_id())
            .or_default()
            .push(idx);
        self.clauses.push(clause);
        self.spans.push(span);
    }

    /// The source position of the clause at `idx`, when known.
    pub fn span(&self, idx: usize) -> Option<Span> {
        self.spans.get(idx).copied().flatten()
    }

    /// The span side-table, aligned with [`Program::clauses`].
    pub fn spans(&self) -> &[Option<Span>] {
        &self.spans
    }

    /// All clauses, in insertion order.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Drops every clause at index `len` or beyond, restoring the
    /// program to an earlier length (transaction-undo helper).
    pub fn truncate(&mut self, len: usize) {
        if len >= self.clauses.len() {
            return;
        }
        for c in &self.clauses[len..] {
            if let Some(v) = self.by_pred.get_mut(&c.head.pred_id()) {
                v.retain(|&i| i < len);
            }
        }
        self.by_pred.retain(|_, v| !v.is_empty());
        self.clauses.truncate(len);
        self.spans.truncate(len);
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the program has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Indices of the clauses whose head predicate is `pred`.
    pub fn clauses_for(&self, pred: Pred) -> &[usize] {
        self.by_pred.get(&pred).map_or(&[], Vec::as_slice)
    }

    /// The clause at `idx`.
    pub fn clause(&self, idx: usize) -> &Clause {
        &self.clauses[idx]
    }

    /// All predicates appearing in heads or bodies.
    pub fn predicates(&self) -> Vec<Pred> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        let mut add = |p: Pred, out: &mut Vec<Pred>| {
            if seen.insert(p) {
                out.push(p);
            }
        };
        for c in &self.clauses {
            add(c.head.pred_id(), &mut out);
            for l in &c.body {
                add(l.atom.pred_id(), &mut out);
            }
        }
        out
    }

    /// Whether the program is definite (Horn).
    pub fn is_definite(&self) -> bool {
        self.clauses.iter().all(Clause::is_definite)
    }

    /// Whether every clause is allowed (see [`Clause::is_allowed`]).
    pub fn is_allowed(&self, store: &TermStore) -> bool {
        self.clauses.iter().all(|c| c.is_allowed(store))
    }

    /// The constants of the program. Per Def. 1.2, if the program has no
    /// constants a fresh one must be invented by the caller (see
    /// `gsls-ground::herbrand`).
    pub fn constants(&self, store: &TermStore) -> Vec<Symbol> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        self.walk_function_symbols(store, |sym, arity| {
            if arity == 0 && seen.insert(sym) {
                out.push(sym);
            }
        });
        out
    }

    /// The proper (arity ≥ 1) function symbols of the program, with arities.
    pub fn function_symbols(&self, store: &TermStore) -> Vec<(Symbol, u32)> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        self.walk_function_symbols(store, |sym, arity| {
            if arity > 0 && seen.insert((sym, arity)) {
                out.push((sym, arity));
            }
        });
        out
    }

    /// Whether the program mentions no proper function symbols
    /// (the *function-free* / datalog class of Sec. 7).
    pub fn is_function_free(&self, store: &TermStore) -> bool {
        self.function_symbols(store).is_empty()
    }

    fn walk_function_symbols(&self, store: &TermStore, mut f: impl FnMut(Symbol, u32)) {
        fn walk(store: &TermStore, t: TermId, f: &mut impl FnMut(Symbol, u32)) {
            if let Term::App(sym, args) = store.term(t) {
                f(*sym, args.len() as u32);
                for &a in args.iter() {
                    walk(store, a, f);
                }
            }
        }
        for c in &self.clauses {
            for &t in c.head.args.iter() {
                walk(store, t, &mut f);
            }
            for l in &c.body {
                for &t in l.atom.args.iter() {
                    walk(store, t, &mut f);
                }
            }
        }
    }

    /// Renders the program in parser syntax, one clause per line.
    pub fn display(&self, store: &TermStore) -> String {
        let mut s = String::new();
        for c in &self.clauses {
            s.push_str(&c.display(store));
            s.push('\n');
        }
        s
    }
}

/// A goal `← Q` where `Q` is a conjunction of literals (Def. 1.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Goal {
    literals: Vec<Literal>,
}

impl Goal {
    /// Creates a goal from literals.
    pub fn new(literals: Vec<Literal>) -> Self {
        Goal { literals }
    }

    /// The empty goal (success).
    pub fn empty() -> Self {
        Goal::default()
    }

    /// The conjuncts of the goal.
    pub fn literals(&self) -> &[Literal] {
        &self.literals
    }

    /// Whether the goal is empty.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// Whether every literal is ground.
    pub fn is_ground(&self, store: &TermStore) -> bool {
        self.literals.iter().all(|l| l.is_ground(store))
    }

    /// Whether the goal contains a positive literal.
    pub fn has_positive(&self) -> bool {
        self.literals.iter().any(Literal::is_pos)
    }

    /// Distinct variables in first-occurrence order.
    pub fn vars(&self, store: &TermStore) -> Vec<Var> {
        let mut out = Vec::new();
        for l in &self.literals {
            l.collect_vars(store, &mut out);
        }
        out
    }

    /// Builds a new goal that removes the literal at `idx` and appends
    /// `extra` (resolution step helper). Order of literals in a goal is
    /// immaterial in the paper; we keep remaining literals in place and
    /// push the new body at the end.
    pub fn resolve_at(&self, idx: usize, extra: &[Literal]) -> Goal {
        let mut literals = Vec::with_capacity(self.literals.len() - 1 + extra.len());
        for (i, l) in self.literals.iter().enumerate() {
            if i != idx {
                literals.push(l.clone());
            }
        }
        literals.extend(extra.iter().cloned());
        Goal { literals }
    }

    /// Renders the goal as `?- l1, l2.` (or `?- .` when empty).
    pub fn display(&self, store: &TermStore) -> String {
        let mut s = String::from("?- ");
        for (i, l) in self.literals.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            l.fmt(store, &mut s);
        }
        s.push('.');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;

    fn sample(store: &mut TermStore) -> Program {
        let a = store.constant("a");
        let b = store.constant("b");
        let x = store.fresh_var(Some("X"));
        let y = store.fresh_var(Some("Y"));
        let win = store.intern_symbol("win");
        let mv = store.intern_symbol("move");
        Program::from_clauses(vec![
            Clause::new(
                Atom::new(win, vec![x]),
                vec![
                    Literal::pos(Atom::new(mv, vec![x, y])),
                    Literal::neg(Atom::new(win, vec![y])),
                ],
            ),
            Clause::fact(Atom::new(mv, vec![a, b])),
            Clause::fact(Atom::new(mv, vec![b, a])),
        ])
    }

    #[test]
    fn index_by_predicate() {
        let mut s = TermStore::new();
        let p = sample(&mut s);
        let win = Pred::new(s.intern_symbol("win"), 1);
        let mv = Pred::new(s.intern_symbol("move"), 2);
        assert_eq!(p.clauses_for(win), &[0]);
        assert_eq!(p.clauses_for(mv), &[1, 2]);
        let nothere = Pred::new(s.intern_symbol("zzz"), 3);
        assert!(p.clauses_for(nothere).is_empty());
    }

    #[test]
    fn truncate_restores_index() {
        let mut s = TermStore::new();
        let mut p = sample(&mut s);
        let c = s.constant("c");
        let mv = s.intern_symbol("move");
        let zz = s.intern_symbol("zz");
        p.push(Clause::fact(Atom::new(mv, vec![c, c])));
        p.push(Clause::fact(Atom::new(zz, vec![c])));
        assert_eq!(p.len(), 5);
        p.truncate(3);
        assert_eq!(p.len(), 3);
        let mv_pred = Pred::new(mv, 2);
        assert_eq!(p.clauses_for(mv_pred), &[1, 2]);
        assert!(p.clauses_for(Pred::new(zz, 1)).is_empty());
        p.truncate(5); // beyond the end: no-op
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn spans_follow_push_and_truncate() {
        let mut s = TermStore::new();
        let mut p = sample(&mut s);
        assert_eq!(p.span(0), None, "programmatic clauses carry no span");
        let c = s.constant("c");
        let zz = s.intern_symbol("zz");
        p.push_spanned(
            Clause::fact(Atom::new(zz, vec![c])),
            Some(Span { line: 7, col: 2 }),
        );
        assert_eq!(p.span(3), Some(Span { line: 7, col: 2 }));
        assert_eq!(p.spans().len(), p.len());
        p.truncate(3);
        assert_eq!(p.span(3), None);
        assert_eq!(p.spans().len(), p.len(), "side-table stays aligned");
    }

    #[test]
    fn predicates_enumerated_once() {
        let mut s = TermStore::new();
        let p = sample(&mut s);
        let preds = p.predicates();
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn constants_and_functions() {
        let mut s = TermStore::new();
        let p = sample(&mut s);
        let consts = p.constants(&s);
        assert_eq!(consts.len(), 2);
        assert!(p.is_function_free(&s));
        assert!(p.function_symbols(&s).is_empty());
    }

    #[test]
    fn function_symbols_detected() {
        let mut s = TermStore::new();
        let one = s.numeral("s", "0", 1);
        let e = s.intern_symbol("e");
        let p = Program::from_clauses(vec![Clause::fact(Atom::new(e, vec![one]))]);
        assert!(!p.is_function_free(&s));
        let fs = p.function_symbols(&s);
        assert_eq!(fs.len(), 1);
        assert_eq!(s.symbol_name(fs[0].0), "s");
        assert_eq!(fs[0].1, 1);
    }

    #[test]
    fn definite_check() {
        let mut s = TermStore::new();
        let p = sample(&mut s);
        assert!(!p.is_definite(), "win clause has a negative literal");
    }

    #[test]
    fn goal_resolution_step() {
        let mut s = TermStore::new();
        let a = s.constant("a");
        let p = s.intern_symbol("p");
        let q = s.intern_symbol("q");
        let g = Goal::new(vec![
            Literal::pos(Atom::new(p, vec![a])),
            Literal::neg(Atom::new(q, vec![a])),
        ]);
        let g2 = g.resolve_at(0, &[Literal::pos(Atom::new(q, vec![a]))]);
        assert_eq!(g2.len(), 2);
        assert!(g2.literals()[0].is_neg());
        assert!(g2.literals()[1].is_pos());
    }

    #[test]
    fn goal_display_and_groundness() {
        let mut s = TermStore::new();
        let a = s.constant("a");
        let p = s.intern_symbol("p");
        let g = Goal::new(vec![Literal::neg(Atom::new(p, vec![a]))]);
        assert_eq!(g.display(&s), "?- ~p(a).");
        assert!(g.is_ground(&s));
        assert!(!g.has_positive());
    }

    #[test]
    fn empty_program_display() {
        let s = TermStore::new();
        let p = Program::new();
        assert!(p.is_empty());
        assert_eq!(p.display(&s), "");
    }
}
