//! Substitutions in triangular (binding-chain) form.
//!
//! A [`Subst`] maps variables to terms. During unification we never eagerly
//! rewrite terms; instead bindings accumulate and [`Subst::walk`] follows
//! variable chains lazily. [`Subst::resolve`] materialises the fully
//! substituted term in the store (creating new hash-consed terms only when
//! needed).

use crate::atom::{Atom, Literal};
use crate::clause::Clause;
use crate::fxhash::FxHashMap;
use crate::program::Goal;
use crate::term::{Term, TermId, TermStore, Var};

/// A substitution `{X₁/t₁, …}` in triangular form.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Subst {
    map: FxHashMap<Var, TermId>,
}

impl Subst {
    /// The identity substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether this is the identity substitution.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Binds `var := term`. The caller must have ensured the binding is
    /// consistent (fresh variable or occurs-checked).
    pub fn bind(&mut self, var: Var, term: TermId) {
        debug_assert!(!self.map.contains_key(&var), "rebinding {var:?}");
        self.map.insert(var, term);
    }

    /// Direct binding lookup (no chain following).
    pub fn lookup(&self, var: Var) -> Option<TermId> {
        self.map.get(&var).copied()
    }

    /// Removes the binding for `var`, returning it if present. Used with
    /// [`crate::unify::match_term_recording`] to backtrack a failed match
    /// without cloning the substitution.
    pub fn remove(&mut self, var: Var) -> Option<TermId> {
        self.map.remove(&var)
    }

    /// Follows variable-to-variable chains from `t` until reaching either
    /// an unbound variable or a function application. Does not descend
    /// into arguments.
    pub fn walk(&self, store: &TermStore, mut t: TermId) -> TermId {
        loop {
            match store.term(t) {
                Term::Var(v) => match self.map.get(v) {
                    Some(&next) => t = next,
                    None => return t,
                },
                Term::App(..) => return t,
            }
        }
    }

    /// Fully applies the substitution to `t`, interning any new terms.
    pub fn resolve(&self, store: &mut TermStore, t: TermId) -> TermId {
        let t = self.walk(store, t);
        if store.is_ground(t) {
            return t;
        }
        match store.term(t).clone() {
            Term::Var(_) => t,
            Term::App(sym, args) => {
                let new_args: Vec<TermId> = args.iter().map(|&a| self.resolve(store, a)).collect();
                store.app(sym, &new_args)
            }
        }
    }

    /// Applies the substitution to an atom.
    pub fn resolve_atom(&self, store: &mut TermStore, atom: &Atom) -> Atom {
        let args: Vec<TermId> = atom.args.iter().map(|&a| self.resolve(store, a)).collect();
        Atom::new(atom.pred, args)
    }

    /// Applies the substitution to a literal.
    pub fn resolve_literal(&self, store: &mut TermStore, lit: &Literal) -> Literal {
        Literal {
            sign: lit.sign,
            atom: self.resolve_atom(store, &lit.atom),
        }
    }

    /// Applies the substitution to every literal of a goal.
    pub fn resolve_goal(&self, store: &mut TermStore, goal: &Goal) -> Goal {
        Goal::new(
            goal.literals()
                .iter()
                .map(|l| self.resolve_literal(store, l))
                .collect(),
        )
    }

    /// Applies the substitution to a clause.
    pub fn resolve_clause(&self, store: &mut TermStore, clause: &Clause) -> Clause {
        Clause {
            head: self.resolve_atom(store, &clause.head),
            body: clause
                .body
                .iter()
                .map(|l| self.resolve_literal(store, l))
                .collect(),
        }
    }

    /// Restricts the substitution to `vars`, fully resolving each binding.
    /// This is the *answer substitution* form shown to users: only the
    /// query's own variables, with all internal chains collapsed.
    pub fn restricted_to(&self, store: &mut TermStore, vars: &[Var]) -> Subst {
        let mut out = Subst::new();
        for &v in vars {
            let vt = store.var_term(v);
            let resolved = self.resolve(store, vt);
            if store.as_var(resolved) != Some(v) {
                out.bind(v, resolved);
            }
        }
        out
    }

    /// Iterates over raw bindings (triangular, unresolved).
    pub fn iter(&self) -> impl Iterator<Item = (Var, TermId)> + '_ {
        self.map.iter().map(|(&v, &t)| (v, t))
    }

    /// Renders the substitution as `{X = t, …}` with variables sorted for
    /// determinism.
    pub fn display(&self, store: &TermStore) -> String {
        let mut entries: Vec<(Var, TermId)> = self.iter().collect();
        entries.sort_by_key(|&(v, _)| v);
        let mut s = String::from("{");
        for (i, (v, t)) in entries.into_iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&store.var_name(v));
            s.push_str(" = ");
            store.fmt_term(t, &mut s);
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_follows_chains() {
        let mut s = TermStore::new();
        let x = s.fresh_var(Some("X"));
        let y = s.fresh_var(Some("Y"));
        let a = s.constant("a");
        let vx = s.as_var(x).unwrap();
        let vy = s.as_var(y).unwrap();
        let mut sub = Subst::new();
        sub.bind(vx, y);
        sub.bind(vy, a);
        assert_eq!(sub.walk(&s, x), a);
    }

    #[test]
    fn walk_stops_at_unbound() {
        let mut s = TermStore::new();
        let x = s.fresh_var(Some("X"));
        let sub = Subst::new();
        assert_eq!(sub.walk(&s, x), x);
    }

    #[test]
    fn resolve_rewrites_arguments() {
        let mut s = TermStore::new();
        let x = s.fresh_var(Some("X"));
        let a = s.constant("a");
        let f = s.intern_symbol("f");
        let fx = s.app(f, &[x]);
        let vx = s.as_var(x).unwrap();
        let mut sub = Subst::new();
        sub.bind(vx, a);
        let fa = sub.resolve(&mut s, fx);
        assert_eq!(s.display_term(fa), "f(a)");
        assert!(s.is_ground(fa));
    }

    #[test]
    fn resolve_is_identity_on_ground() {
        let mut s = TermStore::new();
        let a = s.constant("a");
        let sub = Subst::new();
        assert_eq!(sub.resolve(&mut s, a), a);
    }

    #[test]
    fn resolve_atom_and_goal() {
        let mut s = TermStore::new();
        let x = s.fresh_var(Some("X"));
        let a = s.constant("a");
        let p = s.intern_symbol("p");
        let vx = s.as_var(x).unwrap();
        let mut sub = Subst::new();
        sub.bind(vx, a);
        let g = Goal::new(vec![Literal::neg(Atom::new(p, vec![x]))]);
        let g2 = sub.resolve_goal(&mut s, &g);
        assert!(g2.is_ground(&s));
        assert_eq!(g2.display(&s), "?- ~p(a).");
    }

    #[test]
    fn restricted_to_collapses_chains() {
        let mut s = TermStore::new();
        let x = s.fresh_var(Some("X"));
        let y = s.fresh_var(Some("Y"));
        let a = s.constant("a");
        let vx = s.as_var(x).unwrap();
        let vy = s.as_var(y).unwrap();
        let mut sub = Subst::new();
        sub.bind(vx, y);
        sub.bind(vy, a);
        let ans = sub.restricted_to(&mut s, &[vx]);
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.lookup(vx), Some(a));
    }

    #[test]
    fn restricted_to_drops_identity() {
        let mut s = TermStore::new();
        let x = s.fresh_var(Some("X"));
        let vx = s.as_var(x).unwrap();
        let sub = Subst::new();
        let ans = sub.restricted_to(&mut s, &[vx]);
        assert!(ans.is_empty());
    }

    #[test]
    fn display_sorted() {
        let mut s = TermStore::new();
        let x = s.fresh_var(Some("X"));
        let y = s.fresh_var(Some("Y"));
        let a = s.constant("a");
        let b = s.constant("b");
        let vx = s.as_var(x).unwrap();
        let vy = s.as_var(y).unwrap();
        let mut sub = Subst::new();
        sub.bind(vy, b);
        sub.bind(vx, a);
        assert_eq!(sub.display(&s), "{X = a, Y = b}");
    }
}
