//! Unification: most general unifiers and one-way matching.

use crate::atom::Atom;
use crate::subst::Subst;
use crate::term::{Term, TermId, TermStore};

/// Options controlling unification.
#[derive(Debug, Clone, Copy)]
pub struct UnifyOpts {
    /// Perform the occurs check (needed for soundness; defaults to `true`).
    pub occurs_check: bool,
}

impl Default for UnifyOpts {
    fn default() -> Self {
        UnifyOpts { occurs_check: true }
    }
}

/// Extends `subst` to a unifier of `a` and `b`. Returns `false` (leaving
/// `subst` in an unspecified but safe state) if no unifier exists; callers
/// that need rollback should clone the substitution first — resolution
/// engines always unify into a fresh clone per child.
pub fn unify(store: &TermStore, subst: &mut Subst, a: TermId, b: TermId) -> bool {
    unify_with(store, subst, a, b, UnifyOpts::default())
}

/// [`unify`] with explicit options.
pub fn unify_with(
    store: &TermStore,
    subst: &mut Subst,
    a: TermId,
    b: TermId,
    opts: UnifyOpts,
) -> bool {
    let a = subst.walk(store, a);
    let b = subst.walk(store, b);
    if a == b {
        return true;
    }
    match (store.term(a), store.term(b)) {
        (Term::Var(v), _) => {
            if opts.occurs_check && occurs_walked(store, subst, *v, b) {
                return false;
            }
            subst.bind(*v, b);
            true
        }
        (_, Term::Var(v)) => {
            if opts.occurs_check && occurs_walked(store, subst, *v, a) {
                return false;
            }
            subst.bind(*v, a);
            true
        }
        (Term::App(f, fargs), Term::App(g, gargs)) => {
            if f != g || fargs.len() != gargs.len() {
                return false;
            }
            // Clone the id slices (Copy elements) so we can recurse while
            // mutating the substitution.
            let fargs: Vec<TermId> = fargs.to_vec();
            let gargs: Vec<TermId> = gargs.to_vec();
            fargs
                .into_iter()
                .zip(gargs)
                .all(|(x, y)| unify_with(store, subst, x, y, opts))
        }
    }
}

/// Occurs check that walks bindings: does `v` occur in `t` under `subst`?
fn occurs_walked(store: &TermStore, subst: &Subst, v: crate::term::Var, t: TermId) -> bool {
    let t = subst.walk(store, t);
    match store.term(t) {
        Term::Var(w) => *w == v,
        Term::App(_, args) => {
            let args: Vec<TermId> = args.to_vec();
            args.into_iter().any(|a| occurs_walked(store, subst, v, a))
        }
    }
}

/// Unifies two atoms (same predicate and arity required).
pub fn unify_atoms(store: &TermStore, subst: &mut Subst, a: &Atom, b: &Atom) -> bool {
    if a.pred != b.pred || a.args.len() != b.args.len() {
        return false;
    }
    a.args
        .iter()
        .zip(b.args.iter())
        .all(|(&x, &y)| unify(store, subst, x, y))
}

/// One-way matching: extends `subst` so that `pattern·subst == target`,
/// binding only variables of `pattern`. `target` must be ground for the
/// guarantee to be meaningful; used by the grounder.
pub fn match_term(store: &TermStore, subst: &mut Subst, pattern: TermId, target: TermId) -> bool {
    let pattern = subst.walk(store, pattern);
    match (store.term(pattern), store.term(target)) {
        (Term::Var(v), _) => {
            subst.bind(*v, target);
            true
        }
        (Term::App(f, fargs), Term::App(g, gargs)) => {
            if f != g || fargs.len() != gargs.len() {
                return false;
            }
            let fargs: Vec<TermId> = fargs.to_vec();
            let gargs: Vec<TermId> = gargs.to_vec();
            fargs
                .into_iter()
                .zip(gargs)
                .all(|(x, y)| match_term(store, subst, x, y))
        }
        (Term::App(..), Term::Var(_)) => pattern == target,
    }
}

/// [`match_term`] that records every variable it binds on `trail`, so a
/// failed or exhausted match can be undone with [`crate::Subst::remove`]
/// instead of cloning the whole substitution. The caller snapshots
/// `trail.len()` before matching and pops back to it to backtrack.
pub fn match_term_recording(
    store: &TermStore,
    subst: &mut Subst,
    pattern: TermId,
    target: TermId,
    trail: &mut Vec<crate::Var>,
) -> bool {
    let pattern = subst.walk(store, pattern);
    match (store.term(pattern), store.term(target)) {
        (Term::Var(v), _) => {
            trail.push(*v);
            subst.bind(*v, target);
            true
        }
        (Term::App(f, fargs), Term::App(g, gargs)) => {
            if f != g || fargs.len() != gargs.len() {
                return false;
            }
            let fargs: Vec<TermId> = fargs.to_vec();
            let gargs: Vec<TermId> = gargs.to_vec();
            fargs
                .into_iter()
                .zip(gargs)
                .all(|(x, y)| match_term_recording(store, subst, x, y, trail))
        }
        (Term::App(..), Term::Var(_)) => pattern == target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TermStore {
        TermStore::new()
    }

    #[test]
    fn unify_identical_constants() {
        let mut s = store();
        let a = s.constant("a");
        let mut sub = Subst::new();
        assert!(unify(&s, &mut sub, a, a));
        assert!(sub.is_empty());
    }

    #[test]
    fn unify_distinct_constants_fails() {
        let mut s = store();
        let a = s.constant("a");
        let b = s.constant("b");
        let mut sub = Subst::new();
        assert!(!unify(&s, &mut sub, a, b));
    }

    #[test]
    fn unify_var_with_term() {
        let mut s = store();
        let x = s.fresh_var(Some("X"));
        let a = s.constant("a");
        let mut sub = Subst::new();
        assert!(unify(&s, &mut sub, x, a));
        assert_eq!(sub.resolve(&mut s, x), a);
    }

    #[test]
    fn unify_two_vars() {
        let mut s = store();
        let x = s.fresh_var(Some("X"));
        let y = s.fresh_var(Some("Y"));
        let a = s.constant("a");
        let mut sub = Subst::new();
        assert!(unify(&s, &mut sub, x, y));
        assert!(unify(&s, &mut sub, y, a));
        assert_eq!(sub.resolve(&mut s, x), a);
    }

    #[test]
    fn unify_nested() {
        let mut s = store();
        let x = s.fresh_var(Some("X"));
        let y = s.fresh_var(Some("Y"));
        let a = s.constant("a");
        let f = s.intern_symbol("f");
        let g = s.intern_symbol("g");
        // f(X, g(X)) with f(a, Y)
        let gx = s.app(g, &[x]);
        let t1 = s.app(f, &[x, gx]);
        let t2 = s.app(f, &[a, y]);
        let mut sub = Subst::new();
        assert!(unify(&s, &mut sub, t1, t2));
        let r1 = sub.resolve(&mut s, t1);
        let r2 = sub.resolve(&mut s, t2);
        assert_eq!(r1, r2);
        assert_eq!(s.display_term(r1), "f(a, g(a))");
    }

    #[test]
    fn occurs_check_blocks_cyclic() {
        let mut s = store();
        let x = s.fresh_var(Some("X"));
        let f = s.intern_symbol("f");
        let fx = s.app(f, &[x]);
        let mut sub = Subst::new();
        assert!(!unify(&s, &mut sub, x, fx), "X = f(X) must fail");
    }

    #[test]
    fn occurs_check_through_bindings() {
        let mut s = store();
        let x = s.fresh_var(Some("X"));
        let y = s.fresh_var(Some("Y"));
        let f = s.intern_symbol("f");
        let fy = s.app(f, &[y]);
        let mut sub = Subst::new();
        assert!(unify(&s, &mut sub, x, y)); // X := Y (or Y := X)
        assert!(!unify(&s, &mut sub, y, fy), "indirect cycle must fail");
    }

    #[test]
    fn occurs_check_can_be_disabled() {
        let mut s = store();
        let x = s.fresh_var(Some("X"));
        let f = s.intern_symbol("f");
        let fx = s.app(f, &[x]);
        let mut sub = Subst::new();
        let opts = UnifyOpts {
            occurs_check: false,
        };
        assert!(unify_with(&s, &mut sub, x, fx, opts));
    }

    #[test]
    fn arity_mismatch_fails() {
        let mut s = store();
        let a = s.constant("a");
        let f = s.intern_symbol("f");
        let t1 = s.app(f, &[a]);
        let t2 = s.app(f, &[a, a]);
        let mut sub = Subst::new();
        assert!(!unify(&s, &mut sub, t1, t2));
    }

    #[test]
    fn unify_atoms_same_pred() {
        let mut s = store();
        let x = s.fresh_var(Some("X"));
        let a = s.constant("a");
        let p = s.intern_symbol("p");
        let q = s.intern_symbol("q");
        let pa = Atom::new(p, vec![a]);
        let px = Atom::new(p, vec![x]);
        let qa = Atom::new(q, vec![a]);
        let mut sub = Subst::new();
        assert!(unify_atoms(&s, &mut sub, &px, &pa));
        let mut sub2 = Subst::new();
        assert!(!unify_atoms(&s, &mut sub2, &px, &qa));
    }

    #[test]
    fn match_is_one_way() {
        let mut s = store();
        let x = s.fresh_var(Some("X"));
        let a = s.constant("a");
        let f = s.intern_symbol("f");
        let fx = s.app(f, &[x]);
        let fa = s.app(f, &[a]);
        let mut sub = Subst::new();
        assert!(match_term(&s, &mut sub, fx, fa));
        assert_eq!(sub.resolve(&mut s, x), a);
        // target with a var, ground pattern: no match unless identical
        let mut sub2 = Subst::new();
        assert!(!match_term(&s, &mut sub2, fa, fx));
    }

    #[test]
    fn mgu_is_most_general() {
        // Unifying p(X, Y) with p(Y, Z): the mgu must keep one variable
        // free (X = Y = Z all mapped to a single representative), not bind
        // them to a constant.
        let mut s = store();
        let x = s.fresh_var(Some("X"));
        let y = s.fresh_var(Some("Y"));
        let z = s.fresh_var(Some("Z"));
        let p = s.intern_symbol("p");
        let a1 = Atom::new(p, vec![x, y]);
        let a2 = Atom::new(p, vec![y, z]);
        let mut sub = Subst::new();
        assert!(unify_atoms(&s, &mut sub, &a1, &a2));
        let r1 = sub.resolve_atom(&mut s, &a1);
        let r2 = sub.resolve_atom(&mut s, &a2);
        assert_eq!(r1, r2);
        assert!(!r1.is_ground(&s), "mgu must not instantiate to ground");
        assert_eq!(r1.vars(&s).len(), 1);
    }
}
