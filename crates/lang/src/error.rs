//! Error types.

use std::fmt;

/// A syntax error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: u32, col: u32, message: impl Into<String>) -> Self {
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_position() {
        let e = ParseError::new(3, 7, "unexpected token");
        let s = e.to_string();
        assert!(s.contains("3:7"));
        assert!(s.contains("unexpected token"));
    }
}
