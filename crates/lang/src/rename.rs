//! Renaming clauses apart (variants with fresh variables).
//!
//! Each resolution step resolves the current goal against *a variant* of a
//! program clause whose variables are disjoint from everything used so far
//! (Def. 3.2). The [`Renamer`] produces such variants, preserving the
//! original variable names for readable traces.

use crate::atom::{Atom, Literal};
use crate::clause::Clause;
use crate::fxhash::FxHashMap;
use crate::term::{Term, TermId, TermStore, Var};

/// Produces fresh-variable variants of terms, atoms and clauses.
///
/// One `Renamer` corresponds to one renaming scope: all occurrences of the
/// same original variable within the scope map to the same fresh variable.
#[derive(Debug, Default)]
pub struct Renamer {
    map: FxHashMap<Var, TermId>,
}

impl Renamer {
    /// Creates a renamer with an empty scope.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the scope so the renamer can be reused for the next variant.
    pub fn reset(&mut self) {
        self.map.clear();
    }

    /// The fresh term standing for original variable `v` in this scope.
    pub fn fresh_for(&mut self, store: &mut TermStore, v: Var) -> TermId {
        if let Some(&t) = self.map.get(&v) {
            return t;
        }
        let name = store.var_name(v);
        let t = store.fresh_var(Some(&name));
        self.map.insert(v, t);
        t
    }

    /// Renames all variables of `t` to fresh ones.
    pub fn rename_term(&mut self, store: &mut TermStore, t: TermId) -> TermId {
        if store.is_ground(t) {
            return t;
        }
        match store.term(t).clone() {
            Term::Var(v) => self.fresh_for(store, v),
            Term::App(sym, args) => {
                let new_args: Vec<TermId> =
                    args.iter().map(|&a| self.rename_term(store, a)).collect();
                store.app(sym, &new_args)
            }
        }
    }

    /// Renames an atom.
    pub fn rename_atom(&mut self, store: &mut TermStore, atom: &Atom) -> Atom {
        let args: Vec<TermId> = atom
            .args
            .iter()
            .map(|&a| self.rename_term(store, a))
            .collect();
        Atom::new(atom.pred, args)
    }

    /// Renames a literal.
    pub fn rename_literal(&mut self, store: &mut TermStore, lit: &Literal) -> Literal {
        Literal {
            sign: lit.sign,
            atom: self.rename_atom(store, &lit.atom),
        }
    }

    /// Produces a variant of `clause` with entirely fresh variables.
    pub fn rename_clause(&mut self, store: &mut TermStore, clause: &Clause) -> Clause {
        Clause {
            head: self.rename_atom(store, &clause.head),
            body: clause
                .body
                .iter()
                .map(|l| self.rename_literal(store, l))
                .collect(),
        }
    }
}

/// Convenience: a one-shot variant of `clause` with fresh variables.
pub fn variant(store: &mut TermStore, clause: &Clause) -> Clause {
    Renamer::new().rename_clause(store, clause)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_has_fresh_vars() {
        let mut s = TermStore::new();
        let x = s.fresh_var(Some("X"));
        let p = s.intern_symbol("p");
        let q = s.intern_symbol("q");
        let c = Clause::new(
            Atom::new(p, vec![x]),
            vec![Literal::pos(Atom::new(q, vec![x]))],
        );
        let v = variant(&mut s, &c);
        assert_ne!(v.head.args[0], c.head.args[0]);
        // Shared variable stays shared inside the variant.
        assert_eq!(v.head.args[0], v.body[0].atom.args[0]);
        // Name preserved for display.
        let nv = s.as_var(v.head.args[0]).unwrap();
        assert_eq!(s.var_name(nv), "X");
    }

    #[test]
    fn ground_clause_unchanged() {
        let mut s = TermStore::new();
        let a = s.constant("a");
        let p = s.intern_symbol("p");
        let c = Clause::fact(Atom::new(p, vec![a]));
        let v = variant(&mut s, &c);
        assert_eq!(v, c);
    }

    #[test]
    fn two_variants_disjoint() {
        let mut s = TermStore::new();
        let x = s.fresh_var(Some("X"));
        let p = s.intern_symbol("p");
        let c = Clause::fact(Atom::new(p, vec![x]));
        let v1 = variant(&mut s, &c);
        let v2 = variant(&mut s, &c);
        assert_ne!(v1.head.args[0], v2.head.args[0]);
    }

    #[test]
    fn nested_terms_renamed_consistently() {
        let mut s = TermStore::new();
        let x = s.fresh_var(Some("X"));
        let f = s.intern_symbol("f");
        let fx = s.app(f, &[x]);
        let p = s.intern_symbol("p");
        let c = Clause::fact(Atom::new(p, vec![x, fx]));
        let v = variant(&mut s, &c);
        let new_x = v.head.args[0];
        let (sym, args) = s.as_app(v.head.args[1]).unwrap();
        assert_eq!(sym, f);
        assert_eq!(args[0], new_x, "f's argument is the same fresh variable");
    }

    #[test]
    fn reset_gives_new_scope() {
        let mut s = TermStore::new();
        let x = s.fresh_var(Some("X"));
        let vx = s.as_var(x).unwrap();
        let mut r = Renamer::new();
        let f1 = r.fresh_for(&mut s, vx);
        let f1b = r.fresh_for(&mut s, vx);
        assert_eq!(f1, f1b);
        r.reset();
        let f2 = r.fresh_for(&mut s, vx);
        assert_ne!(f1, f2);
    }
}
