//! # gsls-lang — the object language of normal logic programs
//!
//! This crate implements the syntactic substrate used by every other crate
//! in the workspace: interned symbols, hash-consed terms, atoms, literals,
//! clauses, programs, goals, substitutions, unification, renaming-apart, a
//! Prolog-style parser and a pretty-printer.
//!
//! The definitions follow Section 1.1 of Ross, *A Procedural Semantics for
//! Well-Founded Negation in Logic Programs* (PODS 1989 / JLP 1992):
//!
//! * a **normal program clause** is `A ← L₁, …, Lₙ` with `A` an atom and
//!   each `Lᵢ` a positive or negative literal ([`Clause`]);
//! * a **program** is a finite set of such clauses ([`Program`]);
//! * a **query** is a set of literals, written as a goal `← Q` ([`Goal`]).
//!
//! ## Term representation
//!
//! Terms are hash-consed into an append-only arena ([`TermStore`]) and
//! referred to by copyable [`TermId`] indices. Structural equality is
//! pointer (id) equality, `is_ground`/`depth`/`size` are cached per term,
//! and shared term graphs never require reference counting — the design
//! recommended for index-heavy database engines.
//!
//! ```
//! use gsls_lang::{TermStore, Program, parse_program, parse_goal};
//!
//! let mut store = TermStore::new();
//! let prog: Program = parse_program(
//!     &mut store,
//!     "win(X) :- move(X, Y), ~win(Y). move(a, b). move(b, a).",
//! ).unwrap();
//! assert_eq!(prog.len(), 3);
//! let goal = parse_goal(&mut store, "?- win(a).").unwrap();
//! assert_eq!(goal.literals().len(), 1);
//! ```

pub mod atom;
pub mod clause;
pub mod error;
pub mod fxhash;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod program;
pub mod proto;
pub mod rename;
pub mod subst;
pub mod symbol;
pub mod term;
pub mod unify;
pub mod wire;

pub use atom::{Atom, Literal, Pred, Sign};
pub use clause::Clause;
pub use error::ParseError;
pub use fxhash::{FxHashMap, FxHashSet};
pub use parser::{parse_goal, parse_program, parse_query, parse_term};
pub use program::{Goal, Program, Span};
pub use proto::{
    decode_request, decode_response, encode_request, encode_response, peek_request_kind,
    CommitNumbers, ErrorKind, GovernOpts, Request, RequestKind, Response, TruthTag, PROTO_VERSION,
};
pub use rename::Renamer;
pub use subst::Subst;
pub use symbol::{Symbol, SymbolTable};
pub use term::{Term, TermId, TermStore, Var};
pub use unify::{match_term, match_term_recording, unify, unify_atoms, UnifyOpts};
pub use wire::{
    decode_atom, decode_clause, decode_term, encode_atom, encode_clause, encode_term, read_str,
    read_uv, write_str, write_uv, VarScope, WireError, WireReader,
};
