//! Hash-consed first-order terms.
//!
//! Terms of the Herbrand universe (Def. 1.2 of the paper) plus variables.
//! Every structurally distinct term exists exactly once inside a
//! [`TermStore`]; the copyable [`TermId`] index is the term's identity, so
//! structural equality of terms is integer equality of ids and shared term
//! graphs carry no ownership burden.
//!
//! Per-term attributes needed constantly by the engines — groundness,
//! depth, size — are computed once at interning time and cached.

use crate::fxhash::FxHashMap;
use crate::symbol::{Symbol, SymbolTable};
use std::fmt;

/// A logic variable, identified by a store-global index.
///
/// Variables are *not* deduplicated by name: each textual occurrence scope
/// (one clause, one query) introduces its own [`Var`]s, and renaming-apart
/// produces fresh ones. The optional name is kept for printing only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The raw index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The shape of a term: a variable, or a function application.
///
/// A constant is an application with an empty argument list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A logic variable.
    Var(Var),
    /// `f(t₁,…,tₙ)`; constants have `n = 0`.
    App(Symbol, Box<[TermId]>),
}

/// Identity of a hash-consed term inside a [`TermStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The raw index of this term.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct TermInfo {
    data: Term,
    /// No variables anywhere below this term.
    ground: bool,
    /// Nesting depth: constants and variables have depth 1, `f(t)` has
    /// `1 + max depth of args`.
    depth: u32,
    /// Number of symbol/variable occurrences in the term tree.
    size: u32,
}

/// The arena interning all terms and symbols of a session.
///
/// A `TermStore` owns the [`SymbolTable`] as well, so one `&mut TermStore`
/// is the only context engines need to thread around.
#[derive(Debug, Default, Clone)]
pub struct TermStore {
    symbols: SymbolTable,
    terms: Vec<TermInfo>,
    cons: FxHashMap<Term, TermId>,
    var_names: Vec<Option<Box<str>>>,
}

impl TermStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access to the symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Interns a symbol name.
    pub fn intern_symbol(&mut self, name: &str) -> Symbol {
        self.symbols.intern(name)
    }

    /// Looks a symbol up by name **without interning** — usable on a
    /// shared (`&self`) store, e.g. a snapshot's.
    pub fn lookup_symbol(&self, name: &str) -> Option<Symbol> {
        self.symbols.lookup(name)
    }

    /// Looks up the application `sym(args…)` **without interning**:
    /// `Some` iff exactly this term was interned before. Usable on a
    /// shared (`&self`) store, e.g. a snapshot's.
    pub fn lookup_app(&self, sym: Symbol, args: &[TermId]) -> Option<TermId> {
        self.cons.get(&Term::App(sym, args.into())).copied()
    }

    /// The textual name of a symbol.
    pub fn symbol_name(&self, sym: Symbol) -> &str {
        self.symbols.name(sym)
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of variables ever created.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// Approximate heap footprint of the arena in bytes: capacities of
    /// the term and interning tables plus a flat per-entry estimate of
    /// the boxed argument lists and names. O(1) — computed from counts,
    /// never by walking entries — so resource governance can poll it on
    /// every accounting check.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        // Each App's boxed args are ~2 ids on average in this workload;
        // per-entry constants absorb allocator headers and hash-map
        // control bytes. Deliberately coarse: budgets are advisory.
        let terms = self.terms.capacity() * size_of::<TermInfo>() + self.terms.len() * 24;
        let cons = self.cons.capacity() * (size_of::<Term>() + size_of::<TermId>() + 16);
        let syms = self.symbols.approx_bytes();
        let vars = self.var_names.capacity() * size_of::<Option<Box<str>>>();
        terms + cons + syms + vars
    }

    fn intern(&mut self, data: Term, ground: bool, depth: u32, size: u32) -> TermId {
        if let Some(&id) = self.cons.get(&data) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("term arena overflow"));
        self.cons.insert(data.clone(), id);
        self.terms.push(TermInfo {
            data,
            ground,
            depth,
            size,
        });
        id
    }

    /// Creates a fresh variable with an optional display name.
    pub fn fresh_var(&mut self, name: Option<&str>) -> TermId {
        let var = Var(u32::try_from(self.var_names.len()).expect("variable overflow"));
        self.var_names.push(name.map(Into::into));
        self.intern(Term::Var(var), false, 1, 1)
    }

    /// The term id of an existing variable.
    pub fn var_term(&mut self, var: Var) -> TermId {
        debug_assert!(var.index() < self.var_names.len(), "unknown variable");
        self.intern(Term::Var(var), false, 1, 1)
    }

    /// The display name of a variable (generated `_Gn` if anonymous).
    pub fn var_name(&self, var: Var) -> String {
        match self.var_names.get(var.index()).and_then(|n| n.as_deref()) {
            Some(name) => name.to_owned(),
            None => format!("_G{}", var.0),
        }
    }

    /// Interns the application `sym(args…)`.
    pub fn app(&mut self, sym: Symbol, args: &[TermId]) -> TermId {
        let mut ground = true;
        let mut depth = 0u32;
        let mut size = 1u32;
        for &a in args {
            let info = &self.terms[a.index()];
            ground &= info.ground;
            depth = depth.max(info.depth);
            size += info.size;
        }
        self.intern(Term::App(sym, args.into()), ground, depth + 1, size)
    }

    /// Interns the constant named `name`.
    pub fn constant(&mut self, name: &str) -> TermId {
        let sym = self.symbols.intern(name);
        self.app(sym, &[])
    }

    /// Interns the application `name(args…)`, interning the name too.
    pub fn apply(&mut self, name: &str, args: &[TermId]) -> TermId {
        let sym = self.symbols.intern(name);
        self.app(sym, args)
    }

    /// Copies every term of this store into `dst`, returning a map
    /// from this store's [`TermId`]s to the corresponding ids in `dst`
    /// (indexed by [`TermId::index`]). Symbols are re-interned by name
    /// and shared structure stays shared (`dst` hash-conses); each
    /// distinct variable here becomes one fresh variable in `dst`,
    /// keeping its display name.
    ///
    /// This is how a server moves decoded request terms out of a
    /// throwaway scratch store into a long-lived session store only
    /// once the request is known to be worth keeping — a rejected
    /// request decoded straight into an append-only session arena
    /// would grow it forever.
    pub fn translate_into(&self, dst: &mut TermStore) -> Vec<TermId> {
        let mut map: Vec<TermId> = Vec::with_capacity(self.terms.len());
        let mut args_buf = Vec::new();
        for info in &self.terms {
            // Arguments always precede their application in the arena,
            // so `map` already covers every child id.
            let id = match &info.data {
                Term::Var(v) => {
                    let name = self.var_names.get(v.index()).and_then(|n| n.as_deref());
                    dst.fresh_var(name)
                }
                Term::App(sym, args) => {
                    let dsym = dst.intern_symbol(self.symbol_name(*sym));
                    args_buf.clear();
                    args_buf.extend(args.iter().map(|a| map[a.index()]));
                    dst.app(dsym, &args_buf)
                }
            };
            map.push(id);
        }
        map
    }

    /// The shape of `id`.
    #[inline]
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()].data
    }

    /// Whether the term contains no variables.
    #[inline]
    pub fn is_ground(&self, id: TermId) -> bool {
        self.terms[id.index()].ground
    }

    /// Nesting depth of the term (constants and variables: 1).
    #[inline]
    pub fn depth(&self, id: TermId) -> u32 {
        self.terms[id.index()].depth
    }

    /// Number of symbol/variable occurrences in the term.
    #[inline]
    pub fn size(&self, id: TermId) -> u32 {
        self.terms[id.index()].size
    }

    /// If `id` is a variable, returns it.
    pub fn as_var(&self, id: TermId) -> Option<Var> {
        match self.term(id) {
            Term::Var(v) => Some(*v),
            Term::App(..) => None,
        }
    }

    /// If `id` is an application, returns symbol and arguments.
    pub fn as_app(&self, id: TermId) -> Option<(Symbol, &[TermId])> {
        match self.term(id) {
            Term::Var(_) => None,
            Term::App(sym, args) => Some((*sym, args)),
        }
    }

    /// Collects the distinct variables of `id` in first-occurrence order.
    pub fn vars_of(&self, id: TermId) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(id, &mut out);
        out
    }

    /// Appends the distinct variables of `id` (not already in `out`).
    pub fn collect_vars(&self, id: TermId, out: &mut Vec<Var>) {
        if self.is_ground(id) {
            return;
        }
        match self.term(id) {
            Term::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Term::App(_, args) => {
                // Clone the slice of ids (cheap: Copy) to appease borrows.
                let args: Vec<TermId> = args.to_vec();
                for a in args {
                    self.collect_vars(a, &mut *out);
                }
            }
        }
    }

    /// Whether variable `v` occurs in term `id` (the *occurs check*).
    pub fn occurs(&self, v: Var, id: TermId) -> bool {
        if self.is_ground(id) {
            return false;
        }
        match self.term(id) {
            Term::Var(w) => *w == v,
            Term::App(_, args) => args.iter().any(|&a| self.occurs(v, a)),
        }
    }

    /// Builds the numeral `s^n(zero)` used by the Van Gelder example
    /// (integer `i` represented as `sⁱ(0)`).
    pub fn numeral(&mut self, succ: &str, zero: &str, n: usize) -> TermId {
        let s = self.symbols.intern(succ);
        let mut t = self.constant(zero);
        for _ in 0..n {
            t = self.app(s, &[t]);
        }
        t
    }

    /// Renders `id` to a string (see [`crate::pretty`] for the grammar).
    pub fn display_term(&self, id: TermId) -> String {
        let mut s = String::new();
        self.fmt_term(id, &mut s);
        s
    }

    pub(crate) fn fmt_term(&self, id: TermId, out: &mut String) {
        match self.term(id) {
            Term::Var(v) => out.push_str(&self.var_name(*v)),
            Term::App(sym, args) => {
                out.push_str(self.symbols.name(*sym));
                if !args.is_empty() {
                    out.push('(');
                    for (i, &a) in args.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        self.fmt_term(a, out);
                    }
                    out.push(')');
                }
            }
        }
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut s = TermStore::new();
        let a1 = s.constant("a");
        let a2 = s.constant("a");
        assert_eq!(a1, a2);
        let f = s.intern_symbol("f");
        let t1 = s.app(f, &[a1]);
        let t2 = s.app(f, &[a2]);
        assert_eq!(t1, t2);
        assert_eq!(s.len(), 2); // a, f(a)
    }

    #[test]
    fn distinct_terms_distinct_ids() {
        let mut s = TermStore::new();
        let a = s.constant("a");
        let b = s.constant("b");
        assert_ne!(a, b);
        let f = s.intern_symbol("f");
        assert_ne!(s.app(f, &[a]), s.app(f, &[b]));
    }

    #[test]
    fn groundness_cached() {
        let mut s = TermStore::new();
        let a = s.constant("a");
        let x = s.fresh_var(Some("X"));
        let f = s.intern_symbol("f");
        let fa = s.app(f, &[a]);
        let fx = s.app(f, &[x]);
        assert!(s.is_ground(fa));
        assert!(!s.is_ground(fx));
        assert!(!s.is_ground(x));
    }

    #[test]
    fn depth_and_size() {
        let mut s = TermStore::new();
        let zero = s.constant("0");
        assert_eq!(s.depth(zero), 1);
        assert_eq!(s.size(zero), 1);
        let three = s.numeral("s", "0", 3);
        assert_eq!(s.depth(three), 4);
        assert_eq!(s.size(three), 4);
        let g = s.intern_symbol("g");
        let t = s.app(g, &[three, zero]);
        assert_eq!(s.depth(t), 5);
        assert_eq!(s.size(t), 6);
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let mut s = TermStore::new();
        let x1 = s.fresh_var(Some("X"));
        let x2 = s.fresh_var(Some("X"));
        assert_ne!(x1, x2, "same display name but distinct variables");
    }

    #[test]
    fn vars_of_ordering_and_dedup() {
        let mut s = TermStore::new();
        let x = s.fresh_var(Some("X"));
        let y = s.fresh_var(Some("Y"));
        let f = s.intern_symbol("f");
        let t = s.app(f, &[y, x, y]);
        let vars = s.vars_of(t);
        assert_eq!(vars.len(), 2);
        assert_eq!(s.var_name(vars[0]), "Y");
        assert_eq!(s.var_name(vars[1]), "X");
    }

    #[test]
    fn occurs_check() {
        let mut s = TermStore::new();
        let x = s.fresh_var(Some("X"));
        let vx = s.as_var(x).unwrap();
        let f = s.intern_symbol("f");
        let fx = s.app(f, &[x]);
        let a = s.constant("a");
        let fa = s.app(f, &[a]);
        assert!(s.occurs(vx, fx));
        assert!(!s.occurs(vx, fa));
        assert!(s.occurs(vx, x));
    }

    #[test]
    fn display_nested() {
        let mut s = TermStore::new();
        let two = s.numeral("s", "0", 2);
        assert_eq!(s.display_term(two), "s(s(0))");
        let x = s.fresh_var(Some("X"));
        let g = s.intern_symbol("g");
        let t = s.app(g, &[two, x]);
        assert_eq!(s.display_term(t), "g(s(s(0)), X)");
    }

    #[test]
    fn anonymous_var_display() {
        let mut s = TermStore::new();
        let v = s.fresh_var(None);
        let var = s.as_var(v).unwrap();
        assert!(s.var_name(var).starts_with("_G"));
    }

    #[test]
    fn numeral_zero() {
        let mut s = TermStore::new();
        let z = s.numeral("s", "0", 0);
        assert_eq!(s.display_term(z), "0");
        assert_eq!(z, s.constant("0"));
    }
}
