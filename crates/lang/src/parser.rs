//! Recursive-descent parser for programs, goals and terms.
//!
//! Grammar (whitespace/comments free between tokens):
//!
//! ```text
//! program  ::= clause*
//! clause   ::= atom ( ":-" literals )? "."
//! goal     ::= "?-" literals? "."         (the "?-" is optional)
//! literals ::= literal ("," literal)*
//! literal  ::= ("~" | "\+")? atom
//! atom     ::= ident ( "(" term ("," term)* ")" )?
//! term     ::= variable | ident ( "(" term ("," term)* ")" )?
//! ```
//!
//! Variable scope is one clause or one goal: every textual occurrence of
//! `X` within a clause denotes the same [`crate::term::Var`], and distinct
//! clauses get distinct variables (no renaming-apart needed at parse time
//! for correctness, but engines still rename per use).

use crate::atom::{Atom, Literal};
use crate::clause::Clause;
use crate::error::ParseError;
use crate::fxhash::FxHashMap;
use crate::lexer::{tokenize, Spanned, Token};
use crate::program::{Goal, Program, Span};
use crate::term::{TermId, TermStore};

struct Parser<'a> {
    store: &'a mut TermStore,
    tokens: Vec<Spanned>,
    pos: usize,
    /// Variable scope for the clause currently being parsed.
    scope: FxHashMap<String, TermId>,
}

impl<'a> Parser<'a> {
    fn new(store: &'a mut TermStore, input: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            store,
            tokens: tokenize(input)?,
            pos: 0,
            scope: FxHashMap::default(),
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn here(&self) -> (u32, u32) {
        let s = &self.tokens[self.pos];
        (s.line, s.col)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError::new(line, col, msg)
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn term(&mut self) -> Result<TermId, ParseError> {
        match self.bump() {
            Token::Variable(name) => {
                if name == "_" {
                    // `_` is the anonymous variable: every occurrence fresh.
                    return Ok(self.store.fresh_var(None));
                }
                if let Some(&t) = self.scope.get(&name) {
                    return Ok(t);
                }
                let t = self.store.fresh_var(Some(&name));
                self.scope.insert(name, t);
                Ok(t)
            }
            Token::Ident(name) => {
                let sym = self.store.intern_symbol(&name);
                if *self.peek() == Token::LParen {
                    self.bump();
                    let mut args = vec![self.term()?];
                    while *self.peek() == Token::Comma {
                        self.bump();
                        args.push(self.term()?);
                    }
                    self.expect(&Token::RParen, ")")?;
                    Ok(self.store.app(sym, &args))
                } else {
                    Ok(self.store.app(sym, &[]))
                }
            }
            other => Err(self.error(format!("expected term, found {other:?}"))),
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        match self.bump() {
            Token::Ident(name) => {
                let sym = self.store.intern_symbol(&name);
                if *self.peek() == Token::LParen {
                    self.bump();
                    let mut args = vec![self.term()?];
                    while *self.peek() == Token::Comma {
                        self.bump();
                        args.push(self.term()?);
                    }
                    self.expect(&Token::RParen, ")")?;
                    Ok(Atom::new(sym, args))
                } else {
                    Ok(Atom::new(sym, Vec::new()))
                }
            }
            other => Err(self.error(format!("expected predicate, found {other:?}"))),
        }
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        if *self.peek() == Token::Not {
            self.bump();
            Ok(Literal::neg(self.atom()?))
        } else {
            Ok(Literal::pos(self.atom()?))
        }
    }

    fn literals(&mut self) -> Result<Vec<Literal>, ParseError> {
        let mut out = vec![self.literal()?];
        while *self.peek() == Token::Comma {
            self.bump();
            out.push(self.literal()?);
        }
        Ok(out)
    }

    fn clause(&mut self) -> Result<Clause, ParseError> {
        self.scope.clear();
        let head = self.atom()?;
        let body = if *self.peek() == Token::If {
            self.bump();
            self.literals()?
        } else {
            Vec::new()
        };
        self.expect(&Token::Dot, "'.'")?;
        Ok(Clause::new(head, body))
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::new();
        while *self.peek() != Token::Eof {
            let (line, col) = self.here();
            let clause = self.clause()?;
            prog.push_spanned(clause, Some(Span { line, col }));
        }
        Ok(prog)
    }

    fn goal(&mut self) -> Result<Goal, ParseError> {
        self.scope.clear();
        if *self.peek() == Token::Query {
            self.bump();
        }
        if *self.peek() == Token::Dot {
            self.bump();
            return Ok(Goal::empty());
        }
        let lits = self.literals()?;
        if *self.peek() == Token::Dot {
            self.bump();
        }
        if *self.peek() != Token::Eof {
            return Err(self.error("trailing input after goal"));
        }
        Ok(Goal::new(lits))
    }
}

/// Parses a whole program.
pub fn parse_program(store: &mut TermStore, input: &str) -> Result<Program, ParseError> {
    Parser::new(store, input)?.program()
}

/// Parses a goal: `?- l1, …, ln.` (the `?-` and final `.` are optional).
pub fn parse_goal(store: &mut TermStore, input: &str) -> Result<Goal, ParseError> {
    Parser::new(store, input)?.goal()
}

/// Alias for [`parse_goal`], matching the paper's use of *query*.
pub fn parse_query(store: &mut TermStore, input: &str) -> Result<Goal, ParseError> {
    parse_goal(store, input)
}

/// Parses a single term (variables scoped to this call).
pub fn parse_term(store: &mut TermStore, input: &str) -> Result<TermId, ParseError> {
    let mut p = Parser::new(store, input)?;
    let t = p.term()?;
    if *p.peek() != Token::Eof {
        return Err(p.error("trailing input after term"));
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_facts_and_rules() {
        let mut s = TermStore::new();
        let p = parse_program(
            &mut s,
            "win(X) :- move(X, Y), ~win(Y).\nmove(a, b). move(b, a).",
        )
        .unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.clause(0).body.len(), 2);
        assert!(p.clause(0).body[1].is_neg());
        assert!(p.clause(1).is_fact());
    }

    #[test]
    fn variable_scoped_per_clause() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p(X) :- q(X). r(X).").unwrap();
        let x1 = p.clause(0).head.args[0];
        let x_body = p.clause(0).body[0].atom.args[0];
        let x2 = p.clause(1).head.args[0];
        assert_eq!(x1, x_body, "same clause shares X");
        assert_ne!(x1, x2, "different clauses have different X");
    }

    #[test]
    fn anonymous_variable_always_fresh() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p(_, _).").unwrap();
        let args = &p.clause(0).head.args;
        assert_ne!(args[0], args[1]);
    }

    #[test]
    fn nested_terms() {
        let mut s = TermStore::new();
        let t = parse_term(&mut s, "e(s(s(0)), s(0))").unwrap();
        assert_eq!(s.display_term(t), "e(s(s(0)), s(0))");
        assert!(s.is_ground(t));
        assert_eq!(s.depth(t), 4);
    }

    #[test]
    fn goal_forms() {
        let mut s = TermStore::new();
        let g1 = parse_goal(&mut s, "?- win(a).").unwrap();
        assert_eq!(g1.len(), 1);
        let g2 = parse_goal(&mut s, "win(a), ~win(b)").unwrap();
        assert_eq!(g2.len(), 2);
        assert!(g2.literals()[1].is_neg());
        let g3 = parse_goal(&mut s, "?- .").unwrap();
        assert!(g3.is_empty());
    }

    #[test]
    fn zero_arity_predicates() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p :- ~q, ~r. q :- r, ~p.").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.clause(0).head.arity(), 0);
    }

    #[test]
    fn both_negation_syntaxes() {
        let mut s = TermStore::new();
        let g = parse_goal(&mut s, "~p(a), \\+ q(b)").unwrap();
        assert!(g.literals().iter().all(Literal::is_neg));
    }

    #[test]
    fn display_roundtrip() {
        let mut s = TermStore::new();
        let src = "win(X) :- move(X, Y), ~win(Y).";
        let p = parse_program(&mut s, src).unwrap();
        let printed = p.clause(0).display(&s);
        assert_eq!(printed, src);
        // Reparse the printed form: same shape.
        let p2 = parse_program(&mut s, &printed).unwrap();
        assert_eq!(p2.clause(0).body.len(), 2);
    }

    #[test]
    fn error_on_missing_dot() {
        let mut s = TermStore::new();
        let e = parse_program(&mut s, "p(a)").unwrap_err();
        assert!(e.message.contains("expected '.'"), "{}", e.message);
    }

    #[test]
    fn error_on_bad_literal() {
        let mut s = TermStore::new();
        let e = parse_program(&mut s, "p :- X.").unwrap_err();
        assert!(e.message.contains("expected predicate"));
    }

    #[test]
    fn error_position_reported() {
        let mut s = TermStore::new();
        let e = parse_program(&mut s, "p(a).\nq(").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn van_gelder_program_parses() {
        let mut s = TermStore::new();
        let src = "
            e(s(0), s(s(0))).
            e(s(s(0)), s(s(s(0)))).
            e(s(s(s(0))), 0).
            e(s(X), 0) :- e(X, 0).
            w(X) :- ~u(X).
            u(X) :- e(Y, X), ~w(Y).
        ";
        let p = parse_program(&mut s, src).unwrap();
        assert_eq!(p.len(), 6);
        assert!(!p.is_function_free(&s));
    }

    #[test]
    fn clause_spans_recorded() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p(a).\n  q(b) :- p(a).").unwrap();
        assert_eq!(p.span(0), Some(Span { line: 1, col: 1 }));
        assert_eq!(p.span(1), Some(Span { line: 2, col: 3 }));
        assert_eq!(p.span(2), None, "out of range is None, not a panic");
    }

    #[test]
    fn trailing_garbage_after_goal() {
        let mut s = TermStore::new();
        assert!(parse_goal(&mut s, "p(a). q(b).").is_err());
    }
}
