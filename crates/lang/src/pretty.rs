//! Pretty-printing helpers.
//!
//! The display methods on [`crate::TermStore`], [`crate::Atom`],
//! [`crate::Clause`], [`crate::Goal`] and [`crate::Subst`] produce text in
//! the parser's grammar, so `display → parse` round-trips. This module adds
//! multi-line helpers used by traces and the examples.

use crate::program::{Goal, Program};
use crate::term::TermStore;

/// Renders a program with clauses grouped by head predicate, each group
/// preceded by a `% name/arity` comment — the layout used in EXPERIMENTS.md
/// listings.
pub fn program_grouped(store: &TermStore, program: &Program) -> String {
    let mut out = String::new();
    for pred in program.predicates() {
        let idxs = program.clauses_for(pred);
        if idxs.is_empty() {
            continue;
        }
        out.push_str(&format!(
            "% {}/{}\n",
            store.symbol_name(pred.sym),
            pred.arity
        ));
        for &i in idxs {
            out.push_str(&program.clause(i).display(store));
            out.push('\n');
        }
    }
    out
}

/// Renders a goal without the `?-` prefix (used inside tree traces where
/// the paper omits the `←` symbol "for clarity").
pub fn bare_goal(store: &TermStore, goal: &Goal) -> String {
    if goal.is_empty() {
        return "□".to_owned(); // the empty goal
    }
    let mut s = String::new();
    for (i, l) in goal.literals().iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        l.fmt(store, &mut s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_goal, parse_program};

    #[test]
    fn grouped_by_predicate() {
        let mut s = TermStore::new();
        let p = parse_program(&mut s, "p(a). q(b). p(c).").unwrap();
        let text = program_grouped(&s, &p);
        let p_pos = text.find("% p/1").unwrap();
        let q_pos = text.find("% q/1").unwrap();
        assert!(p_pos < q_pos);
        // Both p clauses listed under the p header.
        let p_section = &text[p_pos..q_pos];
        assert!(p_section.contains("p(a)."));
        assert!(p_section.contains("p(c)."));
    }

    #[test]
    fn bare_goal_forms() {
        let mut s = TermStore::new();
        let g = parse_goal(&mut s, "?- move(a, B), ~win(B).").unwrap();
        assert_eq!(bare_goal(&s, &g), "move(a, B), ~win(B)");
        let empty = parse_goal(&mut s, "?- .").unwrap();
        assert_eq!(bare_goal(&s, &empty), "□");
    }
}
