//! Atoms, signed literals, and predicate identities.

use crate::symbol::Symbol;
use crate::term::{Term, TermId, TermStore, Var};
use std::fmt;

/// A predicate identity: symbol together with its arity.
///
/// Programs may reuse a name at several arities; engines key their indexes
/// on `Pred`, never on the bare symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred {
    /// The predicate symbol.
    pub sym: Symbol,
    /// Number of arguments.
    pub arity: u32,
}

impl Pred {
    /// Creates a predicate identity.
    pub fn new(sym: Symbol, arity: u32) -> Self {
        Pred { sym, arity }
    }
}

/// An atom `p(t₁,…,tₙ)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Predicate symbol.
    pub pred: Symbol,
    /// Argument terms.
    pub args: Box<[TermId]>,
}

impl Atom {
    /// Creates an atom from a predicate symbol and arguments.
    pub fn new(pred: Symbol, args: impl Into<Box<[TermId]>>) -> Self {
        Atom {
            pred,
            args: args.into(),
        }
    }

    /// Number of arguments.
    pub fn arity(&self) -> u32 {
        self.args.len() as u32
    }

    /// The predicate identity of this atom.
    pub fn pred_id(&self) -> Pred {
        Pred::new(self.pred, self.arity())
    }

    /// Whether every argument is ground.
    pub fn is_ground(&self, store: &TermStore) -> bool {
        self.args.iter().all(|&t| store.is_ground(t))
    }

    /// Whether every argument is a variable or a constant — no proper
    /// function symbol anywhere (the function-free fragment).
    pub fn args_function_free(&self, store: &TermStore) -> bool {
        self.args.iter().all(|&t| match store.term(t) {
            Term::Var(_) => true,
            Term::App(_, args) => args.is_empty(),
        })
    }

    /// Rebuilds this atom over `dst`, where `map` is the term map
    /// produced by [`TermStore::translate_into`] on `src` (the store
    /// this atom's ids live in).
    pub fn translate(&self, src: &TermStore, dst: &mut TermStore, map: &[TermId]) -> Atom {
        let pred = dst.intern_symbol(src.symbol_name(self.pred));
        let args: Vec<TermId> = self.args.iter().map(|t| map[t.index()]).collect();
        Atom::new(pred, args)
    }

    /// Appends the distinct variables of this atom to `out`.
    pub fn collect_vars(&self, store: &TermStore, out: &mut Vec<Var>) {
        for &t in self.args.iter() {
            store.collect_vars(t, out);
        }
    }

    /// The distinct variables of this atom in first-occurrence order.
    pub fn vars(&self, store: &TermStore) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(store, &mut out);
        out
    }

    /// Renders the atom.
    pub fn display(&self, store: &TermStore) -> String {
        let mut s = String::new();
        self.fmt(store, &mut s);
        s
    }

    pub(crate) fn fmt(&self, store: &TermStore, out: &mut String) {
        out.push_str(store.symbol_name(self.pred));
        if !self.args.is_empty() {
            out.push('(');
            for (i, &a) in self.args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                store.fmt_term(a, out);
            }
            out.push(')');
        }
    }
}

/// Polarity of a literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// A positive literal `p(t̄)`.
    Pos,
    /// A negative literal `¬p(t̄)`.
    Neg,
}

impl Sign {
    /// The opposite polarity.
    pub fn flip(self) -> Sign {
        match self {
            Sign::Pos => Sign::Neg,
            Sign::Neg => Sign::Pos,
        }
    }

    /// Whether this is [`Sign::Pos`].
    pub fn is_pos(self) -> bool {
        matches!(self, Sign::Pos)
    }

    /// Whether this is [`Sign::Neg`].
    pub fn is_neg(self) -> bool {
        matches!(self, Sign::Neg)
    }
}

/// A positive or negative literal (Def. 1.1 / 1.6 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Literal {
    /// Polarity.
    pub sign: Sign,
    /// The underlying atom.
    pub atom: Atom,
}

impl Literal {
    /// A positive literal over `atom`.
    pub fn pos(atom: Atom) -> Self {
        Literal {
            sign: Sign::Pos,
            atom,
        }
    }

    /// A negative literal over `atom`.
    pub fn neg(atom: Atom) -> Self {
        Literal {
            sign: Sign::Neg,
            atom,
        }
    }

    /// The complement literal (Def. 1.6: `¬·L`).
    pub fn complement(&self) -> Literal {
        Literal {
            sign: self.sign.flip(),
            atom: self.atom.clone(),
        }
    }

    /// Whether the literal is positive.
    pub fn is_pos(&self) -> bool {
        self.sign.is_pos()
    }

    /// Whether the literal is negative.
    pub fn is_neg(&self) -> bool {
        self.sign.is_neg()
    }

    /// Whether the underlying atom is ground.
    pub fn is_ground(&self, store: &TermStore) -> bool {
        self.atom.is_ground(store)
    }

    /// Rebuilds this literal over `dst`; see [`Atom::translate`].
    pub fn translate(&self, src: &TermStore, dst: &mut TermStore, map: &[TermId]) -> Literal {
        Literal {
            sign: self.sign,
            atom: self.atom.translate(src, dst, map),
        }
    }

    /// Appends the distinct variables of this literal to `out`.
    pub fn collect_vars(&self, store: &TermStore, out: &mut Vec<Var>) {
        self.atom.collect_vars(store, out);
    }

    /// Renders the literal with `~` marking negation.
    pub fn display(&self, store: &TermStore) -> String {
        let mut s = String::new();
        self.fmt(store, &mut s);
        s
    }

    pub(crate) fn fmt(&self, store: &TermStore, out: &mut String) {
        if self.is_neg() {
            out.push('~');
        }
        self.atom.fmt(store, out);
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sign::Pos => write!(f, "+"),
            Sign::Neg => write!(f, "-"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::TermStore;

    fn setup() -> (TermStore, Atom, Atom) {
        let mut s = TermStore::new();
        let a = s.constant("a");
        let x = s.fresh_var(Some("X"));
        let p = s.intern_symbol("p");
        let ground = Atom::new(p, vec![a]);
        let open = Atom::new(p, vec![x, a]);
        (s, ground, open)
    }

    #[test]
    fn groundness() {
        let (s, ground, open) = setup();
        assert!(ground.is_ground(&s));
        assert!(!open.is_ground(&s));
    }

    #[test]
    fn pred_identity_includes_arity() {
        let (_, ground, open) = setup();
        assert_eq!(ground.pred, open.pred);
        assert_ne!(ground.pred_id(), open.pred_id());
    }

    #[test]
    fn complement_flips_sign_only() {
        let (_, ground, _) = setup();
        let l = Literal::pos(ground.clone());
        let c = l.complement();
        assert!(c.is_neg());
        assert_eq!(c.atom, ground);
        assert_eq!(c.complement(), l);
    }

    #[test]
    fn display_forms() {
        let (s, ground, open) = setup();
        assert_eq!(ground.display(&s), "p(a)");
        assert_eq!(open.display(&s), "p(X, a)");
        assert_eq!(Literal::neg(ground).display(&s), "~p(a)");
    }

    #[test]
    fn zero_arity_atom_display() {
        let mut s = TermStore::new();
        let q = s.intern_symbol("q");
        let atom = Atom::new(q, Vec::new());
        assert_eq!(atom.display(&s), "q");
        assert_eq!(atom.arity(), 0);
    }

    #[test]
    fn vars_in_order() {
        let (s, _, open) = setup();
        let vars = open.vars(&s);
        assert_eq!(vars.len(), 1);
        assert_eq!(s.var_name(vars[0]), "X");
    }

    #[test]
    fn sign_flip() {
        assert_eq!(Sign::Pos.flip(), Sign::Neg);
        assert_eq!(Sign::Neg.flip(), Sign::Pos);
        assert!(Sign::Pos.is_pos() && !Sign::Pos.is_neg());
    }
}
