//! A fast, non-cryptographic hasher for integer-keyed maps.
//!
//! This is the Fx hash algorithm used by rustc (`rustc-hash`), reimplemented
//! in-tree so the workspace needs no extra dependency. It is dramatically
//! faster than SipHash for the small integer keys ([`crate::TermId`],
//! [`crate::Symbol`], ground-atom ids) that dominate this codebase.
//! HashDoS resistance is irrelevant here: all keys are internally generated.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with the Fx hash function.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the Fx hash function.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher state: a single 64-bit word folded with
/// `hash = (hash.rotate_left(5) ^ word) * SEED` per input word.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_values() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(1);
        b.write_u32(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_tail_disambiguated_from_padding() {
        // b"ab\0" and b"ab" must hash differently even though the zero
        // padding makes their first words equal.
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"ab\0");
        b.write(b"ab");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn set_roundtrip() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn long_byte_strings() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(&[1u8; 64]);
        b.write(&[1u8; 65]);
        assert_ne!(a.finish(), b.finish());
    }
}
