//! Normal program clauses (Def. 1.1 of the paper).

use crate::atom::{Atom, Literal};
use crate::term::{TermId, TermStore, Var};

/// A normal program clause `A ← L₁, …, Lₙ`.
///
/// `A` is the **head** and `L₁,…,Lₙ` the **body**; all variables are
/// implicitly universally quantified at the front of the clause, and the
/// commas denote conjunction. A clause with an empty body is a fact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Clause {
    /// The head atom.
    pub head: Atom,
    /// The body literals.
    pub body: Vec<Literal>,
}

impl Clause {
    /// Creates a clause.
    pub fn new(head: Atom, body: Vec<Literal>) -> Self {
        Clause { head, body }
    }

    /// Creates a fact (empty body).
    pub fn fact(head: Atom) -> Self {
        Clause {
            head,
            body: Vec::new(),
        }
    }

    /// Whether the clause is a fact.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// Whether the clause mentions no proper function symbol — every
    /// argument everywhere is a variable or a constant.
    pub fn is_function_free(&self, store: &TermStore) -> bool {
        self.head.args_function_free(store)
            && self.body.iter().all(|l| l.atom.args_function_free(store))
    }

    /// Rebuilds this clause over `dst`, where `map` is the term map
    /// produced by [`TermStore::translate_into`] on `src`.
    pub fn translate(&self, src: &TermStore, dst: &mut TermStore, map: &[TermId]) -> Clause {
        Clause {
            head: self.head.translate(src, dst, map),
            body: self
                .body
                .iter()
                .map(|l| l.translate(src, dst, map))
                .collect(),
        }
    }

    /// Whether the clause is definite (no negative body literals).
    pub fn is_definite(&self) -> bool {
        self.body.iter().all(Literal::is_pos)
    }

    /// Whether head and all body literals are ground.
    pub fn is_ground(&self, store: &TermStore) -> bool {
        self.head.is_ground(store) && self.body.iter().all(|l| l.is_ground(store))
    }

    /// The distinct variables of the clause in first-occurrence order
    /// (head first, then body left to right).
    pub fn vars(&self, store: &TermStore) -> Vec<Var> {
        let mut out = Vec::new();
        self.head.collect_vars(store, &mut out);
        for l in &self.body {
            l.collect_vars(store, &mut out);
        }
        out
    }

    /// Whether the clause is **allowed** (a.k.a. range-restricted for
    /// normal clauses, [Lloyd 87]): every variable of the clause occurs in
    /// at least one *positive* body literal.
    ///
    /// Allowed programs with allowed queries never flounder (Sec. 6 of the
    /// paper).
    pub fn is_allowed(&self, store: &TermStore) -> bool {
        let mut pos_vars = Vec::new();
        for l in self.body.iter().filter(|l| l.is_pos()) {
            l.collect_vars(store, &mut pos_vars);
        }
        self.vars(store).iter().all(|v| pos_vars.contains(v))
    }

    /// Positive body literals.
    pub fn pos_body(&self) -> impl Iterator<Item = &Literal> {
        self.body.iter().filter(|l| l.is_pos())
    }

    /// Negative body literals.
    pub fn neg_body(&self) -> impl Iterator<Item = &Literal> {
        self.body.iter().filter(|l| l.is_neg())
    }

    /// Renders the clause in parser syntax (`h :- b1, ~b2.`).
    pub fn display(&self, store: &TermStore) -> String {
        let mut s = String::new();
        self.head.fmt(store, &mut s);
        if !self.body.is_empty() {
            s.push_str(" :- ");
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                l.fmt(store, &mut s);
            }
        }
        s.push('.');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::TermStore;

    fn atom(store: &mut TermStore, p: &str, args: &[crate::term::TermId]) -> Atom {
        let sym = store.intern_symbol(p);
        Atom::new(sym, args.to_vec())
    }

    #[test]
    fn fact_properties() {
        let mut s = TermStore::new();
        let a = s.constant("a");
        let c = Clause::fact(atom(&mut s, "p", &[a]));
        assert!(c.is_fact());
        assert!(c.is_definite());
        assert!(c.is_ground(&s));
        assert!(c.is_allowed(&s));
        assert_eq!(c.display(&s), "p(a).");
    }

    #[test]
    fn definite_vs_normal() {
        let mut s = TermStore::new();
        let a = s.constant("a");
        let p = atom(&mut s, "p", &[a]);
        let q = atom(&mut s, "q", &[a]);
        let definite = Clause::new(p.clone(), vec![Literal::pos(q.clone())]);
        let normal = Clause::new(p, vec![Literal::neg(q)]);
        assert!(definite.is_definite());
        assert!(!normal.is_definite());
    }

    #[test]
    fn allowedness() {
        let mut s = TermStore::new();
        let x = s.fresh_var(Some("X"));
        let p = atom(&mut s, "p", &[x]);
        let q = atom(&mut s, "q", &[x]);
        // p(X) :- ~q(X). — X occurs only in a negative literal: not allowed.
        let bad = Clause::new(p.clone(), vec![Literal::neg(q.clone())]);
        assert!(!bad.is_allowed(&s));
        // p(X) :- q(X), ~q(X). — X occurs in a positive literal: allowed.
        let good = Clause::new(p, vec![Literal::pos(q.clone()), Literal::neg(q)]);
        assert!(good.is_allowed(&s));
    }

    #[test]
    fn head_only_var_not_allowed() {
        let mut s = TermStore::new();
        let x = s.fresh_var(Some("X"));
        let p = atom(&mut s, "p", &[x]);
        let bad = Clause::fact(p);
        assert!(!bad.is_allowed(&s), "p(X). is not allowed");
    }

    #[test]
    fn vars_head_first() {
        let mut s = TermStore::new();
        let x = s.fresh_var(Some("X"));
        let y = s.fresh_var(Some("Y"));
        let p = atom(&mut s, "p", &[x]);
        let q = atom(&mut s, "q", &[y, x]);
        let c = Clause::new(p, vec![Literal::pos(q)]);
        let vars = c.vars(&s);
        assert_eq!(vars.len(), 2);
        assert_eq!(s.var_name(vars[0]), "X");
        assert_eq!(s.var_name(vars[1]), "Y");
    }

    #[test]
    fn display_with_body() {
        let mut s = TermStore::new();
        let x = s.fresh_var(Some("X"));
        let y = s.fresh_var(Some("Y"));
        let w = atom(&mut s, "win", &[x]);
        let m = atom(&mut s, "move", &[x, y]);
        let w2 = atom(&mut s, "win", &[y]);
        let c = Clause::new(w, vec![Literal::pos(m), Literal::neg(w2)]);
        assert_eq!(c.display(&s), "win(X) :- move(X, Y), ~win(Y).");
    }

    #[test]
    fn pos_neg_body_split() {
        let mut s = TermStore::new();
        let a = s.constant("a");
        let p = atom(&mut s, "p", &[a]);
        let q = atom(&mut s, "q", &[a]);
        let r = atom(&mut s, "r", &[a]);
        let c = Clause::new(
            p,
            vec![Literal::pos(q.clone()), Literal::neg(r), Literal::pos(q)],
        );
        assert_eq!(c.pos_body().count(), 2);
        assert_eq!(c.neg_body().count(), 1);
    }
}
