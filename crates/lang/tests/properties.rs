//! Property-based tests for the object-language substrate: unification
//! invariants and display/parse round-trips over randomly generated
//! terms, clauses and programs.

use gsls_lang::{parse_program, parse_term, unify, Subst, TermId, TermStore};
use proptest::prelude::*;

/// A recipe for building a random term inside a fresh store.
#[derive(Debug, Clone)]
enum TermRecipe {
    Var(u8),
    Const(u8),
    App(u8, Vec<TermRecipe>),
}

fn term_recipe() -> impl Strategy<Value = TermRecipe> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(TermRecipe::Var),
        (0u8..4).prop_map(TermRecipe::Const),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        ((0u8..3), prop::collection::vec(inner, 1..3))
            .prop_map(|(f, args)| TermRecipe::App(f, args))
    })
}

fn build(store: &mut TermStore, vars: &mut Vec<TermId>, r: &TermRecipe) -> TermId {
    match r {
        TermRecipe::Var(i) => {
            while vars.len() <= *i as usize {
                let n = vars.len();
                let v = store.fresh_var(Some(&format!("V{n}")));
                vars.push(v);
            }
            vars[*i as usize]
        }
        TermRecipe::Const(c) => store.constant(&format!("c{c}")),
        TermRecipe::App(f, args) => {
            let ids: Vec<TermId> = args.iter().map(|a| build(store, vars, a)).collect();
            store.apply(&format!("f{f}"), &ids)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Unification produces a genuine unifier: both sides resolve to the
    /// same term under the substitution.
    #[test]
    fn unifier_actually_unifies(a in term_recipe(), b in term_recipe()) {
        let mut store = TermStore::new();
        let mut vars = Vec::new();
        let ta = build(&mut store, &mut vars, &a);
        let tb = build(&mut store, &mut vars, &b);
        let mut sub = Subst::new();
        if unify(&store, &mut sub, ta, tb) {
            let ra = sub.resolve(&mut store, ta);
            let rb = sub.resolve(&mut store, tb);
            prop_assert_eq!(ra, rb, "resolved terms must coincide");
        }
    }

    /// Resolution under a unifier is idempotent: applying the
    /// substitution twice changes nothing.
    #[test]
    fn resolution_idempotent(a in term_recipe(), b in term_recipe()) {
        let mut store = TermStore::new();
        let mut vars = Vec::new();
        let ta = build(&mut store, &mut vars, &a);
        let tb = build(&mut store, &mut vars, &b);
        let mut sub = Subst::new();
        if unify(&store, &mut sub, ta, tb) {
            let once = sub.resolve(&mut store, ta);
            let twice = sub.resolve(&mut store, once);
            prop_assert_eq!(once, twice);
        }
    }

    /// Unification is symmetric in success.
    #[test]
    fn unification_symmetric(a in term_recipe(), b in term_recipe()) {
        let mut store = TermStore::new();
        let mut vars = Vec::new();
        let ta = build(&mut store, &mut vars, &a);
        let tb = build(&mut store, &mut vars, &b);
        let ok_ab = unify(&store, &mut Subst::new(), ta, tb);
        let ok_ba = unify(&store, &mut Subst::new(), tb, ta);
        prop_assert_eq!(ok_ab, ok_ba);
    }

    /// Term display → parse round-trips to the identical hash-consed id
    /// (for ground terms; variable names are scope-local).
    #[test]
    fn ground_term_display_parse_roundtrip(a in term_recipe()) {
        let mut store = TermStore::new();
        let mut vars = Vec::new();
        let t = build(&mut store, &mut vars, &a);
        if store.is_ground(t) {
            let text = store.display_term(t);
            let back = parse_term(&mut store, &text).unwrap();
            prop_assert_eq!(t, back);
        }
    }

    /// A term unifies with itself via the empty substitution.
    #[test]
    fn self_unification_is_trivial(a in term_recipe()) {
        let mut store = TermStore::new();
        let mut vars = Vec::new();
        let t = build(&mut store, &mut vars, &a);
        let mut sub = Subst::new();
        prop_assert!(unify(&store, &mut sub, t, t));
        prop_assert!(sub.is_empty());
    }

    /// Program display → parse round-trips clause-for-clause.
    #[test]
    fn program_display_parse_roundtrip(
        n_clauses in 1usize..8,
        seed in any::<u64>(),
    ) {
        // Build a small random program from a fixed grammar of shapes.
        let mut text = String::new();
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as usize
        };
        for _ in 0..n_clauses {
            let h = next() % 3;
            match next() % 4 {
                0 => text.push_str(&format!("p{h}(a).\n")),
                1 => text.push_str(&format!("p{h}(X) :- q{}(X).\n", next() % 3)),
                2 => text.push_str(&format!(
                    "p{h}(X) :- q{}(X, Y), ~p{}(Y).\n",
                    next() % 3,
                    next() % 3
                )),
                _ => text.push_str(&format!("q{}(a, b).\n", next() % 3)),
            }
        }
        let mut store = TermStore::new();
        let prog = parse_program(&mut store, &text).unwrap();
        let printed = prog.display(&store);
        let mut store2 = TermStore::new();
        let prog2 = parse_program(&mut store2, &printed).unwrap();
        prop_assert_eq!(prog.len(), prog2.len());
        prop_assert_eq!(printed, prog2.display(&store2));
    }
}
