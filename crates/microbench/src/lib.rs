//! A minimal, dependency-free benchmark harness exposing the subset of
//! the `criterion` API this workspace's benches use.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the real criterion cannot be a dependency. The bench sources keep
//! their `use criterion::…` imports unchanged; the bench crate aliases
//! this package as `criterion` via a path dependency rename. The harness
//! measures wall-clock time per iteration (median of `sample_size`
//! samples after a warm-up window) and prints one line per benchmark in
//! a stable, grep-friendly format:
//!
//! ```text
//! bench group/id/param ... median 12.345 µs/iter (n samples)
//! ```

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(900),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// How long to run the closure before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget spread over the samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing the harness configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            config: self.criterion.clone(),
            result: None,
        };
        f(&mut bencher, input);
        if let Some(r) = bencher.result {
            println!(
                "bench {}/{} ... median {} ({} samples)",
                self.name,
                id.id,
                format_per_iter(r.median_ns),
                r.samples
            );
        }
        self
    }

    /// Ends the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}
}

struct SampleResult {
    median_ns: f64,
    samples: usize,
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    config: Criterion,
    result: Option<SampleResult>,
}

impl Bencher {
    /// Times `routine`, keeping its return value opaque to the optimiser.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window elapses, counting
        // iterations to size the timed batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            std_black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let sample_budget_ns =
            self.config.measurement_time.as_nanos() as f64 / self.config.sample_size as f64;
        let iters_per_sample = ((sample_budget_ns / per_iter.max(1.0)) as u64).clamp(1, 1 << 24);

        let mut samples: Vec<f64> = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median_ns = samples[samples.len() / 2];
        self.result = Some(SampleResult {
            median_ns,
            samples: samples.len(),
        });
    }
}

fn format_per_iter(ns: f64) -> String {
    let mut s = String::new();
    if ns < 1_000.0 {
        let _ = write!(s, "{ns:.1} ns/iter");
    } else if ns < 1_000_000.0 {
        let _ = write!(s, "{:.3} µs/iter", ns / 1_000.0);
    } else if ns < 1_000_000_000.0 {
        let _ = write!(s, "{:.3} ms/iter", ns / 1_000_000.0);
    } else {
        let _ = write!(s, "{:.3} s/iter", ns / 1_000_000_000.0);
    }
    s
}

/// Declares a bench group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3))
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut c = quick();
        let mut group = c.benchmark_group("test/group");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("id", 4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>());
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn id_forms() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }

    #[test]
    fn group_and_main_macros_compile() {
        fn target(c: &mut Criterion) {
            let mut g = c.benchmark_group("m");
            g.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, _| {
                b.iter(|| 1 + 1);
            });
            g.finish();
        }
        criterion_group! {
            name = benches;
            config = Criterion::default()
                .sample_size(2)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(2));
            targets = target
        }
        benches();
    }
}
