//! Domain example: full analysis of a combinatorial game board.
//!
//! Classifies every position of a game graph as won / lost / drawn using
//! the memoized engine, then shows goal-directedness: querying one
//! component leaves the other untouched.
//!
//! ```sh
//! cargo run --example game_analysis
//! ```

use global_sls::prelude::*;
use gsls_workloads::win_random;

fn main() {
    let mut store = TermStore::new();
    let program = win_random(&mut store, 24, 2, 7);
    println!("Random game with 24 positions (seed 7):");

    let gp = Grounder::ground(&mut store, &program).unwrap();
    let mut engine = TabledEngine::new(gp.clone());

    let mut won = Vec::new();
    let mut lost = Vec::new();
    let mut drawn = Vec::new();
    for a in gp.atom_ids() {
        let name = gp.display_atom(&store, a);
        if !name.starts_with("win(") {
            continue;
        }
        match engine.truth(a) {
            Truth::True => won.push(name),
            Truth::False => lost.push(name),
            Truth::Undefined => drawn.push(name),
        }
    }
    println!("  won:   {}", won.join(", "));
    println!("  lost:  {}", lost.join(", "));
    println!("  drawn: {}", drawn.join(", "));
    println!(
        "  (engine stats: {:?}, {} atoms tabled)",
        engine.stats(),
        engine.tabled_count()
    );

    // Goal-directedness: two disconnected game boards; querying board 1
    // never evaluates board 2.
    let two_boards = "
        m1(a, b). m1(b, c). w1(X) :- m1(X, Y), ~w1(Y).
        m2(u, v). m2(v, u). w2(X) :- m2(X, Y), ~w2(Y).
    ";
    let mut store = TermStore::new();
    let program = parse_program(&mut store, two_boards).unwrap();
    let gp = Grounder::ground(&mut store, &program).unwrap();
    let total = gp.atom_count();
    let mut engine = TabledEngine::new(gp.clone());
    let w1a = gp
        .atom_ids()
        .find(|&a| gp.display_atom(&store, a) == "w1(a)")
        .unwrap();
    let t = engine.truth(w1a);
    println!(
        "\nTwo disconnected boards ({total} ground atoms total): \
         w1(a) = {t}; evaluated only {} atoms — board 2 untouched.",
        engine.stats().evaluated_atoms
    );
}
