//! Domain example: full analysis of a combinatorial game board — live.
//!
//! Classifies every position of a game graph as won / lost / drawn by
//! streaming one prepared query over the session's maintained model,
//! then edits the board incrementally and re-classifies. The raw
//! memoized engine's goal-directedness demo rides along (internals).
//!
//! ```sh
//! cargo run --example game_analysis
//! ```

use global_sls::internals::TabledEngine;
use global_sls::prelude::*;
use global_sls::workloads::win_random;

fn classify(session: &mut Session, q: &mut PreparedQuery) -> Result<(), SessionError> {
    // One streamed pass: true and undefined instances arrive from the
    // iterator; every other position of the predicate is lost.
    let mut won = Vec::new();
    let mut drawn = Vec::new();
    let mut it = q.execute(session)?;
    while let Some(ans) = it.next() {
        let name = ans.subst.display(it.store());
        match ans.truth {
            Truth::True => won.push(name),
            Truth::Undefined => drawn.push(name),
            Truth::False => unreachable!("streams only true/undefined"),
        }
    }
    drop(it);
    let gp = session.ground_program();
    let total = gp
        .atom_ids()
        .filter(|&a| gp.display_atom(session.store(), a).starts_with("win("))
        .count();
    println!("  won:   {}", won.join(", "));
    println!("  drawn: {}", drawn.join(", "));
    println!(
        "  lost:  {} of {total} positions",
        total - won.len() - drawn.len()
    );
    Ok(())
}

fn main() -> Result<(), SessionError> {
    let mut store = TermStore::new();
    let program = win_random(&mut store, 24, 2, 7);
    println!("Random game with 24 positions (seed 7):");
    let mut session = Session::from_parts(store, program)?;
    let mut wins = session.prepare("?- win(X).")?;
    classify(&mut session, &mut wins)?;

    // Live edits, each an incremental commit over the same session.
    println!("\nAfter asserting an extra move n0 → n1:");
    session.assert_facts("move(n0, n1).")?;
    classify(&mut session, &mut wins)?;
    println!("\nAfter retracting it again:");
    session.retract_facts("move(n0, n1).")?;
    classify(&mut session, &mut wins)?;

    // Goal-directedness of the raw memoized engine: two disconnected
    // boards; querying board 1 never evaluates board 2.
    let two_boards = "
        m1(a, b). m1(b, c). w1(X) :- m1(X, Y), ~w1(Y).
        m2(u, v). m2(v, u). w2(X) :- m2(X, Y), ~w2(Y).
    ";
    let mut store = TermStore::new();
    let program = parse_program(&mut store, two_boards).unwrap();
    let gp = Grounder::ground(&mut store, &program).unwrap();
    let total = gp.atom_count();
    let mut engine = TabledEngine::new(gp.clone());
    let w1a = gp
        .atom_ids()
        .find(|&a| gp.display_atom(&store, a) == "w1(a)")
        .unwrap();
    let t = engine.truth(w1a);
    println!(
        "\nTwo disconnected boards ({total} ground atoms total): \
         w1(a) = {t}; evaluated only {} atoms — board 2 untouched.",
        engine.stats().evaluated_atoms
    );
    Ok(())
}
