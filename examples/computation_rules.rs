//! Examples 3.2 and 3.3: why the computation rule must be preferential.
//!
//! ```sh
//! cargo run --example computation_rules
//! ```

use global_sls::internals::{deviant_evaluate, DeviantOpts, RuleKind};
use global_sls::prelude::*;

fn main() -> Result<(), SessionError> {
    let mut store = TermStore::new();

    // ---- Example 3.2: positivistic selection is required. -------------
    let ex32 = "p :- q, ~r. q :- r, ~p. r :- p, ~q. s :- ~p, ~q, ~r.";
    let program = parse_program(&mut store, ex32).unwrap();
    println!("Example 3.2:\n{}", program.display(&store));
    println!("Well-founded model: {{s, ~p, ~q, ~r}} — so ← s should succeed.\n");
    let goal = parse_goal(&mut store, "?- s.").unwrap();
    for rule in [RuleKind::Preferential, RuleKind::LeftmostLiteral] {
        let v = deviant_evaluate(&mut store, &program, &goal, rule, DeviantOpts::default());
        println!("  {rule:?}: ← s is {v:?}");
    }
    println!(
        "  The non-positivistic rule expands a negative literal into the p/q/r\n\
         \x20 cycle and recurses through negation forever.\n"
    );

    // ---- Example 3.3: negatively-parallel expansion is required. ------
    let ex33 = "p :- ~p. q :- ~p, ~s. s.";
    let program = parse_program(&mut store, ex33).unwrap();
    println!(
        "Example 3.3 (function-free analogue):\n{}",
        program.display(&store)
    );
    println!("Well-founded model: {{s, ~q}} with p undefined — so ← q should fail.\n");
    let goal = parse_goal(&mut store, "?- q.").unwrap();
    for rule in [RuleKind::Preferential, RuleKind::SequentialNegative] {
        let v = deviant_evaluate(&mut store, &program, &goal, rule, DeviantOpts::default());
        println!("  {rule:?}: ← q is {v:?}");
    }
    println!(
        "  The sequential rule gets stuck on the undefined ¬p and never looks at\n\
         \x20 the failing ¬s; expanding both in parallel fails q immediately."
    );

    // Cross-check with the session's maintained bottom-up model.
    let mut session = Session::from_source(ex33)?;
    println!(
        "\nSession reads on Example 3.3: p={}, q={}, s={}",
        session.truth("?- p.")?,
        session.truth("?- q.")?,
        session.truth("?- s.")?,
    );
    Ok(())
}
