//! The semantics landscape of Section 1 on classic programs:
//! Fitting (Kripke–Kleene) vs well-founded vs stable models — with the
//! session serving the well-founded column live.
//!
//! ```sh
//! cargo run --example semantics_zoo
//! ```

use global_sls::internals::GroundAtomId;
use global_sls::prelude::*;

fn analyse(title: &str, src: &str) {
    let mut store = TermStore::new();
    let program = parse_program(&mut store, src).unwrap();
    // Full instantiation so even underivable atoms show up in the
    // side-by-side model displays.
    let gp = Grounder::ground_with(
        &mut store,
        &program,
        GrounderOpts {
            mode: GroundingMode::Full,
            ..GrounderOpts::default()
        },
    )
    .unwrap();
    println!("── {title}\n{}", program.display(&store));
    let fit = fitting_model(&gp);
    let wfm = well_founded_model(&gp);
    println!("  Fitting:       {}", fit.display(&store, &gp));
    println!("  Well-founded:  {}", wfm.display(&store, &gp));
    let stable = stable_models(&gp, 8);
    if stable.is_empty() {
        println!("  Stable models: none");
    } else {
        for (i, m) in stable.iter().enumerate() {
            let atoms: Vec<String> = m
                .iter()
                .map(|x| gp.display_atom(&store, GroundAtomId(x as u32)))
                .collect();
            println!("  Stable model {}: {{{}}}", i + 1, atoms.join(", "));
        }
    }
    // The served view: a session answers every atom from its maintained
    // model — atoms the relevant grounding never interned are false.
    let mut session = Session::from_source(src).expect("zoo programs are function-free");
    let served: Vec<String> = gp
        .atom_ids()
        .map(|a| {
            let name = gp.display_atom(&store, a);
            let t = session.truth(&format!("?- {name}.")).expect("ground query");
            format!("{name}={t}")
        })
        .collect();
    println!("  Session reads: {}", served.join(", "));
    println!();
}

fn main() {
    analyse("Positive loop — Fitting can't fail it, WFS can", "p :- p.");
    analyse(
        "Odd loop through negation — no stable model, WFS stays partial",
        "p :- ~p.",
    );
    analyse(
        "Even loop — two stable models, WFS undefined on both atoms",
        "p :- ~q. q :- ~p.",
    );
    analyse(
        "Choice with shared consequence — stable intersection beats WFS",
        "a :- ~b. b :- ~a. c :- a. c :- b.",
    );
    analyse(
        "Stratified — all three semantics coincide",
        "q. p :- ~q. r :- ~p.",
    );
    analyse(
        "Example 3.2 — unfounded positive cycle guarded by negation",
        "p :- q, ~r. q :- r, ~p. r :- p, ~q. s :- ~p, ~q, ~r.",
    );
}
