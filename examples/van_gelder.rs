//! Example 3.1 / Figures 1–4: the Van Gelder ordinal-level program.
//!
//! Reproduces the paper's figures as text, verifies the `level(w(sⁿ(0)))
//! = 2n` family, and derives `level(w(0)) = ω + 2` symbolically.
//!
//! ```sh
//! cargo run --example van_gelder
//! ```

// The ordinal-level machinery (SLP/global trees, symbolic levels) is
// diagnostic surface, re-exported from `internals`; the program has
// function symbols, so it stays off the session engine by design.
use global_sls::internals::{
    render_global, render_slp, GlobalOpts, GlobalTree, HerbrandOpts, Ordinal, SlpOpts, SlpTree,
};
use global_sls::prelude::*;
use gsls_workloads::van_gelder_program;

fn numeral(n: usize) -> String {
    let mut t = "0".to_owned();
    for _ in 0..n {
        t = format!("s({t})");
    }
    t
}

fn main() {
    let mut store = TermStore::new();
    let program = van_gelder_program(&mut store);
    println!("Example 3.1 program (s(0) < s²(0) < … < 0, with 0 playing ω):\n");
    println!("{}", program.display(&store));

    // Figures 1–2: SLP-trees for w_i and u_i.
    for goal_src in ["?- w(s(0)).", "?- u(s(s(0))).", "?- u(0)."] {
        let goal = parse_goal(&mut store, goal_src).unwrap();
        let slp = SlpTree::build(
            &mut store,
            &program,
            &goal,
            SlpOpts {
                max_depth: 6,
                max_nodes: 64,
                ground_loop_check: true,
            },
        );
        println!("SLP-tree for {goal_src}   (Figures 1–3)");
        println!("{}", render_slp(&store, &slp));
    }

    // Figure 4: the global tree for ← w(s(0)), statuses + levels.
    let goal = parse_goal(&mut store, "?- w(s(0)).").unwrap();
    let tree = GlobalTree::build(&mut store, &program, &goal, GlobalOpts::default());
    println!("Global tree for ?- w(s(0)).   (Figure 4, n = 1 slice)");
    println!("{}", render_global(&store, &tree));

    // The level family: level(← w(sⁿ(0))) = 2n.
    println!("Levels of ← w(sⁿ(0))   (paper: 2n)");
    println!("{:>3} {:>22} {:>8}", "n", "goal", "level");
    for n in 1..=6usize {
        let goal = parse_goal(&mut store, &format!("?- w({}).", numeral(n))).unwrap();
        let tree = GlobalTree::build(&mut store, &program, &goal, GlobalOpts::default());
        let level = tree
            .root()
            .level_succ
            .clone()
            .map_or("?".to_owned(), |l| l.to_string());
        println!("{n:>3} {:>22} {level:>8}", format!("w(s^{n}(0))"));
    }

    // The ω-step: lub{2n : n < ω} = ω; fail(u(0)) = ω+1; succ(w(0)) = ω+2.
    let lub = Ordinal::omega_limit();
    let fail_u0 = lub.succ();
    let succ_w0 = fail_u0.succ();
    println!("\nSymbolic levels over the full (infinite) Herbrand base:");
    println!("  lub {{ level(w(sⁿ(0))) : n }} = lub {{ 2n }} = {lub}");
    println!("  level(← u(0)) = {lub} + 1 = {fail_u0}   (failed)");
    println!("  level(← w(0)) = {fail_u0} + 1 = {succ_w0}   (successful)");
    println!("  — matching the paper: «the goal ← w(0) has level ω + 2».");

    // Noneffectiveness: the budgeted tree engine cannot decide w(0)…
    let goal = parse_goal(&mut store, "?- w(0).").unwrap();
    let tree = GlobalTree::build(&mut store, &program, &goal, GlobalOpts::default());
    println!(
        "\nBudgeted tree engine on ?- w(0): {:?} (budget hit: {}) — the paper's \
         noneffectiveness (Sec. 7).",
        tree.status(),
        tree.budget_hit()
    );

    // …while the depth-bounded bottom-up model shows w(0) is true.
    let gp = Grounder::ground_with(
        &mut store,
        &program,
        GrounderOpts {
            universe: HerbrandOpts {
                max_depth: 8,
                max_terms: 10_000,
            },
            ..GrounderOpts::default()
        },
    )
    .unwrap();
    let model = well_founded_model(&gp);
    let w0 = gp
        .atom_ids()
        .find(|&a| gp.display_atom(&store, a) == "w(0)")
        .expect("w(0) interned");
    println!(
        "Depth-8 bounded well-founded model: w(0) is {} — the program is not \
         locally stratified, yet has a total well-founded model.",
        model.truth(w0)
    );
}
