//! The batch-compatibility path, pinned: `parse_program` →
//! `Solver::new` → `query` keeps working exactly as before the
//! [`Session`] redesign, and agrees with a session serving the same
//! program. New code should prefer the session (see `quickstart`); this
//! example exists so the shim's contract stays exercised.
//!
//! ```sh
//! cargo run --example solver_compat
//! ```

use global_sls::prelude::*;

const WINGAME: &str = "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).";

fn main() -> Result<(), SessionError> {
    // The pre-session flow: caller-owned store, one-shot solver.
    let mut store = TermStore::new();
    let program = parse_program(&mut store, WINGAME).unwrap();
    let mut solver = Solver::new(program);

    let goal = parse_goal(&mut store, "?- win(X).").unwrap();
    let batch = solver.query(&mut store, &goal, Engine::Tabled).unwrap();
    println!("Solver  ?- win(X): truth={}", batch.truth);
    for a in &batch.answers {
        println!("  true for {}", a.display(&store));
    }

    // Both engines answer ground queries identically.
    for q in ["?- win(a).", "?- win(b).", "?- win(c)."] {
        let g = parse_goal(&mut store, q).unwrap();
        let tabled = solver.query(&mut store, &g, Engine::Tabled).unwrap();
        let tree = solver.query(&mut store, &g, Engine::GlobalTree).unwrap();
        assert_eq!(tabled.truth, tree.truth, "{q}");
        println!(
            "Solver  {q}  tabled={} global-tree={}",
            tabled.truth, tree.truth
        );
    }

    // The same program behind a session gives the same answers — the
    // solver is a shim over the session's query machinery.
    let mut session = Session::from_source(WINGAME)?;
    let live = session.query("?- win(X).")?;
    assert_eq!(live.truth, batch.truth);
    assert_eq!(live.answers.len(), batch.answers.len());
    println!(
        "\nSession ?- win(X): truth={} ({} answer) — shim and session agree.",
        live.truth,
        live.answers.len()
    );
    Ok(())
}
