//! Serving demo: start a server on an ephemeral port, drive it with
//! concurrent clients, and watch the group-commit write path amortize
//! fsyncs.
//!
//! Run: `cargo run --example serve_demo`

use global_sls::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data_dir = std::env::temp_dir().join(format!("gsls_serve_demo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);

    // 1. A durable server on an ephemeral port.
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: Some(data_dir.clone()),
        ..ServerConfig::default()
    })?;
    let addr = server.addr();
    println!("serving on {addr}");

    // 2. Seed the win-game program over the wire.
    let mut client = Client::connect(addr)?;
    client.ping()?;
    let receipt = client.commit(
        "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).",
        "",
        "",
        GovernOpts::default(),
    )?;
    println!("seeded at epoch {}", receipt.epoch);

    // 3. Concurrent writers: each commits its own fact batch. The
    //    session's writer thread drains them as groups — many WAL
    //    records, few fsyncs.
    let writers: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || -> Result<u64, ClientError> {
                let mut c = Client::connect(addr)?;
                let mut last = 0;
                for j in 0..5 {
                    let r = c.commit(
                        "",
                        &format!("move(c, n{i}_{j})."),
                        "",
                        GovernOpts::default(),
                    )?;
                    last = r.epoch;
                }
                Ok(last)
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer thread")?;
    }

    // 4. Concurrent readers on snapshots, while a governed commit with
    //    an already-expired deadline bounces off (Interrupted) without
    //    disturbing anyone.
    let strict = GovernOpts {
        deadline_ms: Some(0),
        ..GovernOpts::default()
    };
    let err = client
        .commit("", "move(zz, yy). move(yy, zz).", "", strict)
        .unwrap_err();
    println!("expired-deadline commit: {err}");

    let q = client.query("?- win(X).", GovernOpts::default())?;
    println!(
        "win(X): {} ({} true, {} undefined)",
        q.truth,
        q.answers.len(),
        q.undefined.len()
    );

    // 5. The scrape shows the amortization: group_records / group_syncs
    //    is the mean batches-per-fsync.
    let scrape = client.metrics()?;
    let get = |name: &str| -> u64 {
        scrape
            .lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let records = get("gsls_wal_group_records");
    let syncs = get("gsls_wal_group_syncs");
    println!("group commit: {records} records over {syncs} fsync groups");

    // 6. Graceful shutdown: writers flush their queues first.
    client.shutdown_server()?;
    std::thread::sleep(Duration::from_millis(50));
    server.shutdown();

    // 7. The state survived: reopen the session directory directly.
    let mut session = Session::open(data_dir.join("default"))?;
    assert_eq!(session.truth("?- move(a, b).")?, Truth::True);
    println!("reopened at epoch {}", session.epoch());
    let _ = std::fs::remove_dir_all(&data_dir);
    Ok(())
}
