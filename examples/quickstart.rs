//! Quickstart: load a program, ask queries, inspect three-valued answers.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use global_sls::prelude::*;

fn main() {
    let mut store = TermStore::new();
    // The win/move game: a position is won iff some move reaches a lost
    // position. a↔b is a potential draw loop, but b can escape to c.
    let program = parse_program(
        &mut store,
        "
        move(a, b). move(b, a). move(b, c).
        win(X) :- move(X, Y), ~win(Y).
        ",
    )
    .expect("program parses");

    println!("Program:\n{}", program.display(&store));
    let mut solver = Solver::new(program);

    for q in ["?- win(a).", "?- win(b).", "?- win(c)."] {
        let goal = parse_goal(&mut store, q).unwrap();
        let r = solver.query(&mut store, &goal, Engine::Tabled).unwrap();
        println!("{q}  ⇒  {}", r.truth);
    }

    // Nonground query: enumerate the winning positions.
    let goal = parse_goal(&mut store, "?- win(X).").unwrap();
    let r = solver.query(&mut store, &goal, Engine::Tabled).unwrap();
    println!("\n?- win(X).");
    for ans in &r.answers {
        println!("  true for {}", ans.display(&store));
    }
    for u in &r.undefined {
        println!("  undefined for {}", u.display(&store));
    }

    // The same query through the explicit global tree, with the tree.
    let tree = solver.global_tree(&mut store, &goal);
    println!(
        "\nGlobal tree for ?- win(X).\n{}",
        render_global(&store, &tree)
    );
}
