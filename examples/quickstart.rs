//! Quickstart: a session-backed deductive database — load a program,
//! stream query answers, update incrementally, read from snapshots.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use global_sls::prelude::*;

fn main() -> Result<(), SessionError> {
    // The win/move game: a position is won iff some move reaches a lost
    // position. a↔b is a potential draw loop, but b can escape to c.
    let mut session = Session::from_source(
        "
        move(a, b). move(b, a). move(b, c).
        win(X) :- move(X, Y), ~win(Y).
        ",
    )?;
    println!("Program:\n{}", session.program().display(session.store()));

    for q in ["?- win(a).", "?- win(b).", "?- win(c)."] {
        println!("{q}  ⇒  {}", session.truth(q)?);
    }

    // Prepared query: compiled once, streamed per execution.
    let mut winners = session.prepare("?- win(X).")?;
    println!("\n?- win(X).");
    let mut it = winners.execute(&mut session)?;
    while let Some(ans) = it.next() {
        println!("  {} for {}", ans.truth, ans.subst.display(it.store()));
    }
    drop(it);

    // Incremental update: give c an escape move back to a. Every
    // position now sits on a cycle — the whole board becomes a draw.
    // The commit delta-grounds the new fact and repairs the model on
    // warm fixpoint chains; nothing is rebuilt.
    session.assert_facts("move(c, a).")?;
    println!("\nafter assert move(c, a):");
    let mut it = winners.execute(&mut session)?;
    while let Some(ans) = it.next() {
        println!("  {} for {}", ans.truth, ans.subst.display(it.store()));
    }
    drop(it);
    println!("  win(b)  ⇒  {}", session.truth("?- win(b).")?);

    // Snapshot: an immutable, Send + Sync view of the committed state.
    let snapshot = session.snapshot();

    // Retract the escape move again — the original verdicts return…
    session.retract_facts("move(c, a).")?;
    println!("\nafter retract move(c, a):");
    println!("  live:     win(b)  ⇒  {}", session.truth("?- win(b).")?);
    // …while the snapshot still serves its epoch, from any thread.
    let frozen = session.prepare("?- win(b).")?;
    let handle = {
        let snapshot = snapshot.clone();
        std::thread::spawn(move || {
            let q = frozen;
            q.execute_on(&snapshot).map(|a| a.collect_result().truth)
        })
    };
    println!(
        "  snapshot: win(b)  ⇒  {} (epoch {})",
        handle.join().expect("reader thread")?,
        snapshot.epoch()
    );
    Ok(())
}
