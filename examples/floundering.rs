//! Section 6: floundering, the `term/1` transform, and the universal
//! query problem (Example 6.1 / the augmented program of Def. 6.1).
//!
//! Programs with function symbols are exactly the ones the session
//! engine refuses (`SessionError::NotFunctionFree`) — they stay on the
//! [`Solver`]'s explicit global-tree engine, shown here.
//!
//! ```sh
//! cargo run --example floundering
//! ```

use global_sls::internals::render_global;
use global_sls::prelude::*;

fn main() {
    let mut store = TermStore::new();

    // ---- Floundering. --------------------------------------------------
    let src = "p(X) :- ~q(f(X)). q(a).";
    let program = parse_program(&mut store, src).unwrap();
    println!("Program:\n{}", program.display(&store));

    // The session boundary: function symbols are not servable.
    match Session::from_source(src) {
        Err(SessionError::NotFunctionFree) => {
            println!("Session::from_source ⇒ NotFunctionFree — using the global-tree engine.\n")
        }
        Err(e) => panic!("expected NotFunctionFree, got {e}"),
        Ok(_) => panic!("expected NotFunctionFree, got a session"),
    }

    let goal = parse_goal(&mut store, "?- p(X).").unwrap();
    let solver = Solver::new(program.clone());
    let tree = solver.global_tree(&mut store, &goal);
    println!("?- p(X).  ⇒  {:?}", tree.status());
    println!("{}", render_global(&store, &tree));
    println!("…while every ground instance succeeds:");
    for t in ["a", "f(a)", "f(f(a))"] {
        let g = parse_goal(&mut store, &format!("?- p({t}).")).unwrap();
        let tree = solver.global_tree(&mut store, &g);
        println!("  ?- p({t}).  ⇒  {:?}", tree.status());
    }

    // ---- The term/1 transform removes floundering. ---------------------
    let transformed = global_sls::internals::term_transform(&mut store, &program);
    println!(
        "\nterm/1-transformed program:\n{}",
        transformed.display(&store)
    );
    let guarded = global_sls::ground::herbrand::guard_goal(&mut store, &goal);
    let solver_t = Solver::new(transformed);
    let tree = solver_t.global_tree(&mut store, &guarded);
    println!("guarded ?- p(X), term(X).  ⇒  {:?}", tree.status());
    let mut store2 = store.clone();
    for ans in tree.answers(&mut store2) {
        println!("  answer {}", ans.subst.display(&store2));
    }

    // ---- Example 6.1: the universal query problem. ----------------------
    println!("\nExample 6.1: P = {{ p(a) }}.");
    let p61 = parse_program(&mut store, "p(a).").unwrap();
    let goal = parse_goal(&mut store, "?- p(X).").unwrap();
    let mut solver61 = Solver::new(p61.clone());
    let r = solver61.query(&mut store, &goal, Engine::Tabled).unwrap();
    println!(
        "?- p(X) over P: answers {:?} — only X = a, never the identity.",
        r.answers
            .iter()
            .map(|a| a.display(&store))
            .collect::<Vec<_>>()
    );
    let augmented = global_sls::internals::augment_program(&mut store, &p61);
    println!(
        "Augmented P' adds {} — its Herbrand universe has infinitely many\n\
         terms not mentioned in P, so ∀x p(x) is correctly refutable:",
        augmented.clause(augmented.len() - 1).display(&store)
    );
    let witness = parse_goal(&mut store, "?- p(f_hat(c_hat)).").unwrap();
    let solver_aug = Solver::new(augmented);
    let tree = solver_aug.global_tree(&mut store, &witness);
    println!("?- p(f_hat(c_hat)) over P'  ⇒  {:?}", tree.status());
}
