//! Parallel evaluation: sharded grounding, wavefront SCC solving, and
//! multi-threaded snapshot reads.
//!
//! ```sh
//! GSLS_THREADS=4 cargo run --release --example parallel_eval
//! ```
//!
//! Grounds a win/move grid board with the sharded parallel seed round,
//! solves it with the tabled engine's SCC wavefront at 1 thread and at
//! the `gsls_par::threads()`-resolved count (checking the verdicts
//! agree — the determinism contract of `gsls-par`), then serves the
//! same board from a [`Session`] snapshot on every worker at once:
//! readers share one immutable `Arc`'d state and never block.

use global_sls::internals::TabledEngine;
use global_sls::prelude::*;
use global_sls::workloads::win_grid;
use std::time::Instant;

fn main() {
    let threads = gsls_par::threads();
    let (w, h) = (120, 120);
    println!("board: {w}x{h}, threads: {threads} (GSLS_THREADS overrides)");

    let ground_at = |n: usize| {
        let mut store = TermStore::new();
        let program = win_grid(&mut store, w, h);
        let t = Instant::now();
        let gp = Grounder::ground_with(
            &mut store,
            &program,
            GrounderOpts {
                threads: n,
                ..GrounderOpts::default()
            },
        )
        .expect("board grounds");
        println!(
            "  ground at {n} thread(s): {} atoms, {} clauses in {:.1}ms",
            gp.atom_count(),
            gp.clause_count(),
            t.elapsed().as_secs_f64() * 1e3,
        );
        let win = store.intern_symbol("win");
        let n0 = store.constant("n0");
        let root = gp
            .lookup_atom(&Atom::new(win, vec![n0]))
            .expect("win(n0) interned");
        (gp, root)
    };

    let (gp_seq, root) = ground_at(1);
    let (gp_par, root_par) = ground_at(threads);
    assert_eq!(gp_seq.clause_count(), gp_par.clause_count());
    assert_eq!(root, root_par, "deterministic id assignment");

    let t = Instant::now();
    let mut seq = TabledEngine::new(gp_seq);
    let v_seq = seq.truth(root);
    println!(
        "  solve at 1 thread: win(n0) = {v_seq} in {:.1}ms ({} atoms tabled)",
        t.elapsed().as_secs_f64() * 1e3,
        seq.tabled_count(),
    );

    let t = Instant::now();
    let mut par = TabledEngine::new(gp_par);
    let v_par = par.truth_parallel(root, threads);
    println!(
        "  solve at {threads} thread(s): win(n0) = {v_par} in {:.1}ms ({} atoms tabled)",
        t.elapsed().as_secs_f64() * 1e3,
        par.tabled_count(),
    );
    assert_eq!(v_seq, v_par, "thread count must not change verdicts");
    println!("verdicts agree — determinism contract holds");

    // ---- Snapshot reads: one immutable state, many reader threads. ----
    let mut store = TermStore::new();
    let program = win_grid(&mut store, w, h);
    let mut session = Session::from_parts(store, program).expect("board is function-free");
    let snapshot = session.snapshot();
    let queries = 2_000usize;
    let atoms: Vec<Atom> = {
        let mut s = snapshot.store().clone();
        (0..queries)
            .map(|i| {
                let win = s.intern_symbol("win");
                let node = s.constant(&format!("n{}", i % (w * h)));
                Atom::new(win, vec![node])
            })
            .collect()
    };
    let t = Instant::now();
    let verdicts = gsls_par::par_map(threads, queries, |i| snapshot.truth_of_atom(&atoms[i]));
    let secs = t.elapsed().as_secs_f64();
    let won = verdicts.iter().filter(|&&v| v == Truth::True).count();
    println!(
        "  snapshot reads: {queries} point queries on {threads} thread(s) in {:.1}ms \
         ({:.0} q/s; {won} won)",
        secs * 1e3,
        queries as f64 / secs,
    );
    assert_eq!(verdicts[0], v_seq, "snapshot agrees with the engines");
}
