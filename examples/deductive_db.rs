//! Domain example: a live deductive database over a dependency graph.
//!
//! Transitive closure plus negated reachability — the workload the
//! deductive-database community motivated well-founded negation with —
//! served by a [`Session`]: queries stream from the maintained model,
//! and schema/data changes are incremental commits, not rebuilds.
//!
//! ```sh
//! cargo run --example deductive_db
//! ```

use global_sls::internals::DepGraph;
use global_sls::prelude::*;

const DB: &str = "
    % A small software dependency graph.
    dep(app, libui).    dep(app, libnet).
    dep(libui, libcore). dep(libnet, libcore).
    dep(libcore, alloc).
    module(app). module(libui). module(libnet).
    module(libcore). module(alloc).

    % Transitive dependencies.
    reach(X, Y) :- dep(X, Y).
    reach(X, Z) :- dep(X, Y), reach(Y, Z).

    % A module is a leaf if it depends on nothing.
    depends_on_something(X) :- dep(X, Y), module(Y).
    leaf(X) :- module(X), ~depends_on_something(X).

    % Safe-to-rebuild-independently: modules not reachable from app.
    independent(X) :- module(X), ~reach(app, X), ~eq_app(X).
    eq_app(app).
";

fn show(label: &str, session: &mut Session, q: &mut PreparedQuery) -> Result<(), SessionError> {
    let mut it = q.execute(session)?;
    let mut names = Vec::new();
    while let Some(a) = it.next() {
        names.push(a.subst.display(it.store()));
    }
    println!("{label}: {names:?}");
    Ok(())
}

fn main() -> Result<(), SessionError> {
    let mut session = Session::from_source(DB)?;
    println!(
        "Deductive database:\n{}",
        session.program().display(session.store())
    );
    assert!(DepGraph::from_program(session.program()).is_stratified());

    // Prepared queries over the maintained model.
    let mut leaves = session.prepare("?- leaf(X).")?;
    let mut independent = session.prepare("?- independent(X).")?;
    show("?- leaf(X)", &mut session, &mut leaves)?;
    show("?- independent(X)", &mut session, &mut independent)?;

    // The SLS-resolution baseline agrees (stratified program).
    {
        let mut store = session.store().clone();
        let goal = parse_goal(&mut store, "?- leaf(X).")?;
        let sls = sls_solve(&mut store, session.program(), &goal, SlsOpts::default()).unwrap();
        println!(
            "SLS-resolution, ?- leaf(X): {:?}",
            sls.answers
                .iter()
                .map(|a| a.display(&store))
                .collect::<Vec<_>>()
        );
    }

    // Live updates: a new module lands, depending on alloc…
    println!("\n-- commit: add module(newmod), dep(newmod, alloc) --");
    session.begin()?;
    session.assert_facts("module(newmod). dep(newmod, alloc).")?;
    let stats = session.commit()?;
    println!(
        "   ({} new ground atoms, {} new ground clauses)",
        stats.new_atoms, stats.new_clauses
    );
    show("?- independent(X)", &mut session, &mut independent)?;

    // …then app drops its UI dependency: libui's whole cone detaches.
    println!("\n-- commit: retract dep(app, libui) --");
    session.retract_facts("dep(app, libui).")?;
    show("?- independent(X)", &mut session, &mut independent)?;

    // Bottom-up baseline: the perfect model (= well-founded model) of
    // the original database, computed from scratch.
    let (gp, pm) = {
        let mut store = TermStore::new();
        let program = parse_program(&mut store, DB)?;
        perfect_model(&mut store, &program).unwrap()
    };
    println!(
        "\nPerfect model is total: {} ({} atoms, {} true).",
        pm.is_total(),
        gp.atom_count(),
        pm.count_true()
    );
    Ok(())
}
