//! Domain example: a stratified deductive database with negation.
//!
//! Transitive closure plus negated reachability — the workload the
//! deductive-database community motivated well-founded negation with —
//! answered by SLS-resolution (the stratified baseline), the memoized
//! global-SLS engine, and the bottom-up model, all agreeing.
//!
//! ```sh
//! cargo run --example deductive_db
//! ```

use global_sls::prelude::*;

const DB: &str = "
    % A small software dependency graph.
    dep(app, libui).    dep(app, libnet).
    dep(libui, libcore). dep(libnet, libcore).
    dep(libcore, alloc).
    module(app). module(libui). module(libnet).
    module(libcore). module(alloc).

    % Transitive dependencies.
    reach(X, Y) :- dep(X, Y).
    reach(X, Z) :- dep(X, Y), reach(Y, Z).

    % A module is a leaf if it depends on nothing.
    depends_on_something(X) :- dep(X, Y), module(Y).
    leaf(X) :- module(X), ~depends_on_something(X).

    % Safe-to-rebuild-independently: modules not reachable from app.
    independent(X) :- module(X), ~reach(app, X), ~eq_app(X).
    eq_app(app).
";

fn main() {
    let mut store = TermStore::new();
    let program = parse_program(&mut store, DB).unwrap();
    println!("Deductive database:\n{}", program.display(&store));
    assert!(DepGraph::from_program(&program).is_stratified());

    // 1. SLS-resolution (stratified baseline).
    let goal = parse_goal(&mut store, "?- leaf(X).").unwrap();
    let sls = sls_solve(&mut store, &program, &goal, SlsOpts::default()).unwrap();
    println!(
        "SLS-resolution, ?- leaf(X): {:?}",
        sls.answers
            .iter()
            .map(|a| a.display(&store))
            .collect::<Vec<_>>()
    );

    // 2. The memoized global-SLS engine.
    let mut solver = Solver::new(program.clone());
    let r = solver.query(&mut store, &goal, Engine::Tabled).unwrap();
    println!(
        "Tabled global SLS, ?- leaf(X): {:?}",
        r.answers
            .iter()
            .map(|a| a.display(&store))
            .collect::<Vec<_>>()
    );

    // 3. Negated reachability.
    let goal = parse_goal(&mut store, "?- independent(X).").unwrap();
    let r = solver.query(&mut store, &goal, Engine::Tabled).unwrap();
    println!(
        "?- independent(X): {:?}",
        r.answers
            .iter()
            .map(|a| a.display(&store))
            .collect::<Vec<_>>()
    );

    // 4. Bottom-up: the whole perfect model (= well-founded model).
    let (gp, pm) = perfect_model(&mut store, &program).unwrap();
    println!(
        "\nPerfect model is total: {} ({} atoms, {} true).",
        pm.is_total(),
        gp.atom_count(),
        pm.count_true()
    );
}
