//! Experiment E10 — program classes (Sec. 7): on stratified programs,
//! SLS-resolution, the tabled engine and the well-founded model coincide
//! (and the model is total); on ground-acyclic programs, the plain
//! (budgeted, non-memoized) tree search already terminates.

use global_sls::internals::*;
use global_sls::prelude::*;
use gsls_core::GlobalOpts;
use gsls_workloads::{negated_reachability, odd_even_chain};

#[test]
fn sls_equals_tabled_on_stratified() {
    let srcs = [
        "r(a). r(b). q(X) :- r(X). p(X) :- r(X), ~q(X).",
        "b(x1). b(x2). e(x1). odd(X) :- b(X), ~e(X).",
        "p :- ~q. q :- ~r. r.",
    ];
    for src in srcs {
        let mut store = TermStore::new();
        let program = parse_program(&mut store, src).unwrap();
        assert!(DepGraph::from_program(&program).is_stratified());
        let (gp, pm) = perfect_model(&mut store, &program).unwrap();
        assert!(pm.is_total());
        let mut tabled = TabledEngine::new(gp.clone());
        for a in gp.atom_ids() {
            assert_eq!(
                tabled.truth(a),
                pm.truth(a),
                "{}",
                gp.display_atom(&store, a)
            );
        }
    }
}

#[test]
fn stratified_wfm_total_on_generators() {
    for n in [3usize, 6, 10] {
        let mut store = TermStore::new();
        let program = negated_reachability(&mut store, n);
        let gp = Grounder::ground(&mut store, &program).unwrap();
        let wfm = well_founded_model(&gp);
        assert!(wfm.is_total(), "n={n}");
        let mut store2 = TermStore::new();
        let chain = odd_even_chain(&mut store2, n);
        let gp2 = Grounder::ground(&mut store2, &chain).unwrap();
        assert!(well_founded_model(&gp2).is_total(), "chain n={n}");
    }
}

#[test]
fn sls_query_agrees_with_tabled_answers() {
    let src = "n(v0). n(v1). n(v2).
               e(v0, v1). e(v1, v2).
               t(X, Y) :- e(X, Y).
               t(X, Z) :- e(X, Y), t(Y, Z).
               unreach(X, Y) :- n(X), n(Y), ~t(X, Y).";
    let mut store = TermStore::new();
    let program = parse_program(&mut store, src).unwrap();
    let goal = parse_goal(&mut store, "?- unreach(v2, Y).").unwrap();
    let sls = sls_solve(&mut store, &program, &goal, SlsOpts::default()).unwrap();
    let mut solver = Solver::new(program);
    let tab = solver.query(&mut store, &goal, Engine::Tabled).unwrap();
    let mut a1: Vec<String> = sls.answers.iter().map(|s| s.display(&store)).collect();
    let mut a2: Vec<String> = tab.answers.iter().map(|s| s.display(&store)).collect();
    a1.sort();
    a1.dedup();
    a2.sort();
    assert_eq!(a1, a2);
    // v2 reaches nothing: unreach(v2, Y) holds for all three nodes.
    assert_eq!(a2.len(), 3);
}

#[test]
fn acyclic_programs_determined_without_memo_assistance() {
    // Ground-acyclic: the plain global tree terminates and decides every
    // atom even with the loop check disabled (Sec. 7: global
    // SLS-resolution is effective for acyclic programs).
    let src = "p :- ~q, r. q :- s, ~z. r. s.";
    let mut store = TermStore::new();
    let program = parse_program(&mut store, src).unwrap();
    let gp = Grounder::ground(&mut store, &program).unwrap();
    assert!(AtomDepGraph::from_ground(&gp).is_acyclic());
    let opts = GlobalOpts {
        slp: SlpOpts {
            ground_loop_check: false,
            ..SlpOpts::default()
        },
        ..GlobalOpts::default()
    };
    for (atom, expect) in [
        ("p", Status::Failed),
        ("q", Status::Successful),
        ("r", Status::Successful),
    ] {
        let goal = parse_goal(&mut store, &format!("?- {atom}.")).unwrap();
        let tree = GlobalTree::build(&mut store, &program, &goal, opts);
        assert_eq!(tree.status(), expect, "{atom}");
        assert!(!tree.budget_hit(), "acyclic ⇒ no budget needed");
    }
}

#[test]
fn locally_stratified_total_but_not_stratified() {
    // even/odd over numerals: predicate-level negation cycle, ground
    // acyclic; the WFM is total.
    let src = "num(z). num(s(z)). num(s(s(z))). num(s(s(s(z)))).
               even(z).
               even(s(X)) :- num(X), ~even(X).";
    let mut store = TermStore::new();
    let program = parse_program(&mut store, src).unwrap();
    assert!(!DepGraph::from_program(&program).is_stratified());
    let gp = Grounder::ground(&mut store, &program).unwrap();
    assert!(AtomDepGraph::from_ground(&gp).is_locally_stratified());
    let wfm = well_founded_model(&gp);
    assert!(wfm.is_total());
    let even2 = gp
        .atom_ids()
        .find(|&a| gp.display_atom(&store, a) == "even(s(s(z)))")
        .unwrap();
    assert_eq!(wfm.truth(even2), Truth::True);
}
