//! Static-analysis gate properties (PR 7).
//!
//! * the workload corpus is lint-clean at default levels (the one
//!   intended cartesian product in `negated_reachability` warns, and
//!   only that);
//! * the analyzer's safety verdict is *meaningful*: an analyzer-clean
//!   random relational program grounds and solves without floundering
//!   fallbacks or budget surprises, and the default Session gate admits
//!   it;
//! * the commit gate and the standalone analyzer agree.

use global_sls::analysis::{analyze, AnalyzerOpts};
use global_sls::prelude::*;
use gsls_ground::{Grounder, GrounderOpts};
use gsls_workloads::{
    negated_reachability, odd_even_chain, random_relational_program, win_chain, win_cycle,
    win_grid, win_random, win_tree, RandomRelationalOpts,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Snapshot: the existing corpus is clean.
// ---------------------------------------------------------------------

/// Every function-free workload generator is diagnostic-free at the
/// default lint levels (win games are unstratified by design, and
/// `unstratified` is allow-by-default for exactly that reason).
#[test]
fn workload_corpus_is_lint_clean() {
    type Generator = fn(&mut TermStore) -> Program;
    let generators: &[(&str, Generator)] = &[
        ("win_chain", |s| win_chain(s, 32)),
        ("win_cycle", |s| win_cycle(s, 9)),
        ("win_tree", |s| win_tree(s, 4)),
        ("win_grid", |s| win_grid(s, 8, 8)),
        ("win_random", |s| win_random(s, 24, 3, 7)),
        ("odd_even_chain", |s| odd_even_chain(s, 16)),
    ];
    for (name, mk) in generators {
        let mut store = TermStore::new();
        let program = mk(&mut store);
        let report = analyze(&store, &program, &AnalyzerOpts::default());
        assert!(
            report.is_clean(),
            "{name} must be diagnostic-free:\n{}",
            report.render()
        );
    }
}

/// `negated_reachability` contains one *intended* cartesian product
/// (`unreach(X,Y) :- n(X), n(Y), ~t(X,Y)` — the n² complement guard):
/// the cost lint names exactly that rule and nothing else fires.
#[test]
fn negated_reachability_warns_on_its_intended_product() {
    let mut store = TermStore::new();
    let program = negated_reachability(&mut store, 8);
    let report = analyze(&store, &program, &AnalyzerOpts::default());
    assert!(!report.has_errors(), "only a warning:\n{}", report.render());
    let warns: Vec<_> = report.warnings().collect();
    assert_eq!(warns.len(), 1, "exactly one warning:\n{}", report.render());
    assert_eq!(warns[0].lint, Lint::CartesianProduct);
    assert_eq!(warns[0].pred.as_deref(), Some("unreach/2"));
}

/// The `.lp` corpus gating check.sh: the two clean files really are
/// clean, and every safety lint fires on the defect corpus with its
/// documented severity.
#[test]
fn lp_corpus_matches_its_advertised_verdicts() {
    let read = |name: &str| {
        std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("examples/lp")
                .join(name),
        )
        .expect("corpus file")
    };
    for clean in ["win_game.lp", "reach.lp"] {
        let mut store = TermStore::new();
        let program = parse_program(&mut store, &read(clean)).expect("parses");
        let report = analyze(&store, &program, &AnalyzerOpts::default());
        assert!(report.is_clean(), "{clean}:\n{}", report.render());
    }
    let mut store = TermStore::new();
    let program = parse_program(&mut store, &read("defects.lp")).expect("parses");
    let report = analyze(&store, &program, &AnalyzerOpts::default());
    let fired: std::collections::BTreeSet<&str> =
        report.diagnostics.iter().map(|d| d.lint.name()).collect();
    for expect in [
        "unbound-head-var",
        "negative-only-var",
        "non-ground-fact",
        "arity-conflict",
        "cartesian-product",
        "unreachable-predicate",
        "never-firing-rule",
        "singleton-var",
    ] {
        assert!(fired.contains(expect), "defects.lp must trip {expect}");
    }
    assert!(report.has_errors(), "safety defects are deny-level");
}

// ---------------------------------------------------------------------
// The verdict is meaningful: clean ⇒ grounds, solves, commits.
// ---------------------------------------------------------------------

/// Grounds and solves a program, requiring success within tight
/// budgets.
fn grounds_and_solves(store: &mut TermStore, program: &Program) -> bool {
    let opts = GrounderOpts {
        max_clauses: 200_000,
        ..GrounderOpts::default()
    };
    match Grounder::ground_with(store, program, opts) {
        Ok(gp) => {
            let m = well_founded_model(&gp);
            let _ = m.is_total();
            true
        }
        Err(_) => false,
    }
}

fn clean_program_property(seed: u64) {
    let mut store = TermStore::new();
    let program = random_relational_program(&mut store, RandomRelationalOpts::default(), seed);
    let report = analyze(&store, &program, &AnalyzerOpts::default());
    if report.has_errors() {
        // Not analyzer-clean: nothing to assert (the generator emits
        // unsafe rules on purpose — they exercise the deny path below).
        let mut s2 = TermStore::new();
        let p2 = random_relational_program(&mut s2, RandomRelationalOpts::default(), seed);
        match Session::from_parts(s2, p2) {
            Err(SessionError::Rejected(_)) => {}
            Err(e) => panic!("seed {seed}: unsafe program rejected oddly: {e}"),
            Ok(_) => {
                panic!("seed {seed}: the default Session gate must deny what analyze() denies")
            }
        }
        return;
    }
    // Analyzer-clean ⇒ the grounder and the bottom-up solver succeed…
    assert!(
        grounds_and_solves(&mut store, &program),
        "seed {seed}: analyzer-clean program failed to ground/solve"
    );
    // …and the default (deny-by-default) Session gate admits it.
    let mut s2 = TermStore::new();
    let p2 = random_relational_program(&mut s2, RandomRelationalOpts::default(), seed);
    match Session::from_parts(s2, p2) {
        Ok(_) => {}
        Err(e) => panic!("seed {seed}: clean program denied at session open: {e}"),
    }
}

#[test]
fn clean_random_programs_ground_solve_and_commit_fixed_seeds() {
    for seed in 0..64 {
        clean_program_property(seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The acceptance property: "analyzer-clean ⇒ no grounding/solve
    /// surprises", swept over random relational programs.
    #[test]
    fn clean_random_programs_ground_solve_and_commit(seed in any::<u64>()) {
        clean_program_property(seed);
    }
}

// ---------------------------------------------------------------------
// Gate ergonomics: one round trip reports everything.
// ---------------------------------------------------------------------

/// A rejected batch reports *all* violations at once, machine-readably.
#[test]
fn rejection_carries_the_full_report() {
    let mut s = Session::from_source("q(a).").unwrap();
    s.begin().unwrap();
    s.add_rules("p(X, Y) :- q(X). r(X) :- ~q(X).").unwrap();
    let err = s.commit().unwrap_err();
    // The rendered rejection enumerates the violations for clients.
    let msg = format!("{err}");
    assert!(msg.contains("2 violations"), "{msg}");
    match err {
        SessionError::Rejected(r) => {
            assert_eq!(r.errors.len(), 2, "both violations in one rejection: {r}");
            let lints: Vec<&str> = r
                .errors
                .iter()
                .map(|e| match e {
                    CommitError::Unsafe(d) => d.lint.name(),
                    other => panic!("expected lint rejections, got {other}"),
                })
                .collect();
            assert!(lints.contains(&"unbound-head-var"), "{lints:?}");
            assert!(lints.contains(&"negative-only-var"), "{lints:?}");
        }
        other => panic!("expected rejection, got {other}"),
    }
}
