//! Differential tests for the difference-driven alternating fixpoint:
//! the incremental `well_founded_model` must equal both the
//! full-recompute propagator baseline (`well_founded_model_scratch`)
//! and the rebuild-everything baseline (`well_founded_model_rebuild`)
//! on random programs, and must do strictly less re-enqueue work than
//! from-scratch restarts on delta-friendly workloads.

use gsls_ground::{Grounder, GrounderOpts, HerbrandOpts};
use gsls_lang::TermStore;
use gsls_wfs::{
    stable_models, vp_iteration, well_founded_model, well_founded_model_rebuild,
    well_founded_model_scratch, well_founded_model_with_stats, wp_iteration,
};
use gsls_workloads::{random_program, van_gelder_program, win_grid, RandomProgramOpts};
use proptest::prelude::*;

fn ground_seed(opts: RandomProgramOpts, seed: u64) -> gsls_ground::GroundProgram {
    let mut store = TermStore::new();
    let program = random_program(&mut store, opts, seed);
    Grounder::ground(&mut store, &program).expect("random program grounds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// All three alternating-fixpoint implementations agree on random
    /// propositional normal programs.
    #[test]
    fn incremental_equals_scratch_and_rebuild(
        seed in any::<u64>(),
        atoms in 2usize..16,
        clauses in 1usize..40,
        max_body in 0usize..4,
    ) {
        let opts = RandomProgramOpts { atoms, clauses, max_body, neg_prob: 0.5 };
        let gp = ground_seed(opts, seed);
        let incremental = well_founded_model(&gp);
        prop_assert_eq!(&incremental, &well_founded_model_scratch(&gp), "scratch, seed {}", seed);
        prop_assert_eq!(&incremental, &well_founded_model_rebuild(&gp), "rebuild, seed {}", seed);
    }

    /// The staged V_P iteration on the incremental substrate still
    /// reaches the same fixpoint as the alternating engines and the
    /// scratch-substrate W_P oracle.
    #[test]
    fn staged_iterations_agree_on_random_programs(seed in any::<u64>()) {
        let opts = RandomProgramOpts { atoms: 10, clauses: 24, max_body: 3, neg_prob: 0.5 };
        let gp = ground_seed(opts, seed);
        let wfm = well_founded_model(&gp);
        prop_assert_eq!(&wfm, &vp_iteration(&gp).model, "vp, seed {}", seed);
        prop_assert_eq!(&wfm, &wp_iteration(&gp).model, "wp, seed {}", seed);
    }

    /// The branch-and-propagate stable enumerator returns genuine stable
    /// models that all extend the WFM, on random programs whose residue
    /// size is whatever it happens to be (no 26-atom ceiling).
    #[test]
    fn stable_enumeration_sound_on_random_programs(seed in any::<u64>()) {
        let opts = RandomProgramOpts { atoms: 10, clauses: 20, max_body: 3, neg_prob: 0.7 };
        let gp = ground_seed(opts, seed);
        let wfm = well_founded_model(&gp);
        for m in stable_models(&gp, 32) {
            prop_assert!(gsls_wfs::is_stable_model(&gp, &m), "seed {}", seed);
            for a in wfm.iter_true() {
                prop_assert!(m.contains(a.index()), "WFM-true in every stable model");
            }
            for a in wfm.iter_false() {
                prop_assert!(!m.contains(a.index()), "WFM-false in no stable model");
            }
        }
    }
}

/// The motivating workload: successive `A(S)` contexts on the van Gelder
/// chain differ in O(1) atoms, so difference-driven restarts must do
/// strictly less clause-recheck and enqueue work than `reduct_calls`
/// from-scratch evaluations would.
#[test]
fn incremental_restarts_beat_scratch_work_on_van_gelder() {
    let mut store = TermStore::new();
    let program = van_gelder_program(&mut store);
    let gp = Grounder::ground_with(
        &mut store,
        &program,
        GrounderOpts {
            universe: HerbrandOpts {
                max_depth: 64,
                max_terms: 1_000_000,
            },
            ..GrounderOpts::default()
        },
    )
    .expect("van_gelder grounds");
    let (model, stats) = well_founded_model_with_stats(&gp);
    assert_eq!(model, well_founded_model_scratch(&gp));
    assert!(stats.reduct_calls > 100, "chain forces many rounds");
    // From-scratch restarts check every clause on every call; the
    // incremental path pays two priming scans plus deltas. Demand an
    // order of magnitude, not just "strictly less".
    let scratch_checks = stats.reduct_calls as u64 * gp.clause_count() as u64;
    assert!(
        stats.clause_checks * 10 < scratch_checks,
        "incremental clause checks {} vs from-scratch {}",
        stats.clause_checks,
        scratch_checks
    );
    // Enqueue work: from-scratch re-derives every atom of A(S) on every
    // call (≈ reduct_calls × |model|); incremental enqueues are bounded
    // by deltas and must come in far below.
    let scratch_enqueues = stats.reduct_calls as u64 * model.pos().count() as u64;
    assert!(
        stats.enqueues < scratch_enqueues / 10,
        "incremental enqueues {} vs from-scratch {}",
        stats.enqueues,
        scratch_enqueues
    );
}

/// The grid board grounds to all three truth values at a size where
/// from-scratch restarts would already hurt, and the engines agree.
#[test]
fn grid_board_engines_agree() {
    let mut store = TermStore::new();
    let program = win_grid(&mut store, 24, 24);
    let gp = Grounder::ground(&mut store, &program).expect("grid grounds");
    let incremental = well_founded_model(&gp);
    assert_eq!(incremental, well_founded_model_scratch(&gp));
    let mut truths = [0usize; 3];
    for a in gp.atom_ids() {
        truths[incremental.truth(a) as usize] += 1;
    }
    assert!(
        truths.iter().all(|&c| c > 0),
        "all three values: {truths:?}"
    );
}
