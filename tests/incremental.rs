//! Differential tests for the difference-driven alternating fixpoint:
//! the incremental `well_founded_model` must equal both the
//! full-recompute propagator baseline (`well_founded_model_scratch`)
//! and the rebuild-everything baseline (`well_founded_model_rebuild`)
//! on random programs, and must do strictly less re-enqueue work than
//! from-scratch restarts on delta-friendly workloads.
//!
//! PR 5 adds the **session maintenance property**: a random walk of
//! assert / retract / add-rule commits on a `global_sls::Session` must
//! leave a model identical to a from-scratch `well_founded_model`
//! rebuild of the merged program after every commit — checked both on
//! the live session and through a `Snapshot` read from
//! `gsls_par::threads()` worker threads (`GSLS_THREADS=2` in check.sh).

use gsls_ground::{Grounder, GrounderOpts, HerbrandOpts};
use gsls_lang::TermStore;
use gsls_wfs::{
    stable_models, vp_iteration, well_founded_model, well_founded_model_rebuild,
    well_founded_model_scratch, well_founded_model_with_stats, wp_iteration,
};
use gsls_workloads::{random_program, van_gelder_program, win_grid, RandomProgramOpts};
use proptest::prelude::*;

fn ground_seed(opts: RandomProgramOpts, seed: u64) -> gsls_ground::GroundProgram {
    let mut store = TermStore::new();
    let program = random_program(&mut store, opts, seed);
    Grounder::ground(&mut store, &program).expect("random program grounds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// All three alternating-fixpoint implementations agree on random
    /// propositional normal programs.
    #[test]
    fn incremental_equals_scratch_and_rebuild(
        seed in any::<u64>(),
        atoms in 2usize..16,
        clauses in 1usize..40,
        max_body in 0usize..4,
    ) {
        let opts = RandomProgramOpts { atoms, clauses, max_body, neg_prob: 0.5 };
        let gp = ground_seed(opts, seed);
        let incremental = well_founded_model(&gp);
        prop_assert_eq!(&incremental, &well_founded_model_scratch(&gp), "scratch, seed {}", seed);
        prop_assert_eq!(&incremental, &well_founded_model_rebuild(&gp), "rebuild, seed {}", seed);
    }

    /// The staged V_P iteration on the incremental substrate still
    /// reaches the same fixpoint as the alternating engines and the
    /// scratch-substrate W_P oracle.
    #[test]
    fn staged_iterations_agree_on_random_programs(seed in any::<u64>()) {
        let opts = RandomProgramOpts { atoms: 10, clauses: 24, max_body: 3, neg_prob: 0.5 };
        let gp = ground_seed(opts, seed);
        let wfm = well_founded_model(&gp);
        prop_assert_eq!(&wfm, &vp_iteration(&gp).model, "vp, seed {}", seed);
        prop_assert_eq!(&wfm, &wp_iteration(&gp).model, "wp, seed {}", seed);
    }

    /// The branch-and-propagate stable enumerator returns genuine stable
    /// models that all extend the WFM, on random programs whose residue
    /// size is whatever it happens to be (no 26-atom ceiling).
    #[test]
    fn stable_enumeration_sound_on_random_programs(seed in any::<u64>()) {
        let opts = RandomProgramOpts { atoms: 10, clauses: 20, max_body: 3, neg_prob: 0.7 };
        let gp = ground_seed(opts, seed);
        let wfm = well_founded_model(&gp);
        for m in stable_models(&gp, 32) {
            prop_assert!(gsls_wfs::is_stable_model(&gp, &m), "seed {}", seed);
            for a in wfm.iter_true() {
                prop_assert!(m.contains(a.index()), "WFM-true in every stable model");
            }
            for a in wfm.iter_false() {
                prop_assert!(!m.contains(a.index()), "WFM-false in no stable model");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Session maintenance: incremental commits ≡ from-scratch rebuilds.
// ---------------------------------------------------------------------

/// Minimal deterministic PRNG (the workloads crate keeps its own
/// private; tests shouldn't depend on its internals).
struct Walk(u64);

impl Walk {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 > 1.0 - p
    }
}

/// The rule pool the walk can add, one by one. Includes recursion
/// through the added rules, negation, a rule feeding a base predicate,
/// and a residual (universe-enumerated) rule.
const WALK_RULES: &[&str] = &[
    "q(X) :- t(X, X).",
    "s(X) :- f(X), ~w(X).",
    "g(X) :- h(X, X).",
    "r2(X, Y) :- e(X, Y), ~e(Y, X).",
    "u(X) :- ~f(X).",
    "v(X) :- t(X, Y), f(Y), ~q(Y).",
];

const WALK_BASE: &str = "
    t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).
    w(X) :- e(X, Y), ~w(Y).
    p(X) :- f(X), ~g(X).
";

/// Constants mentioned in a walk fact source (`c<i>` tokens).
fn consts_in(src: &str) -> Vec<usize> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'c' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
            let mut j = i + 1;
            let mut n = 0usize;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                n = n * 10 + (bytes[j] - b'0') as usize;
                j += 1;
            }
            out.push(n);
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

fn walk_fact(rng: &mut Walk, n_consts: usize) -> String {
    let c = |rng: &mut Walk| format!("c{}", rng.below(n_consts));
    match rng.below(4) {
        0 => format!("e({}, {}).", c(rng), c(rng)),
        1 => format!("f({}).", c(rng)),
        2 => format!("g({}).", c(rng)),
        _ => format!("h({}, {}).", c(rng), c(rng)),
    }
}

/// One random session walk: mixed commits (some batched in explicit
/// transactions), model checked against a merged-program rebuild after
/// every commit, plus a threaded snapshot read.
fn session_walk(seed: u64, commits: usize) {
    use global_sls::prelude::*;

    let mut rng = Walk(seed);
    let mut session = Session::from_source(WALK_BASE).expect("base program grounds");
    // The rule pool deliberately includes lint-deniable rules (u/1 is
    // negative-only: exactly the residual active-domain case this walk
    // exercises), so the gate is opted out for the walk.
    session.set_lint_config(LintConfig::permissive());
    // Seed one fact through the session so both sides always own at
    // least one constant (base facts are retractable like any other).
    session.assert_facts("f(c0).").expect("seed fact");
    // Ever-seen constants anchor the rebuild's universe to the
    // session's active domain (the session never shrinks it).
    let mut sources: Vec<String> = vec![WALK_BASE.to_owned()];
    let mut active: Vec<String> = vec!["f(c0).".to_owned()]; // active fact sources
    let mut rules_left: Vec<&str> = WALK_RULES.to_vec();
    // Constants the *session* has seen (its active domain never
    // shrinks); the rebuild oracle is anchored to exactly this set.
    let mut seen: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    seen.insert(0); // c0 from the base program
    let threads = gsls_par::threads();

    for step in 0..commits {
        // Grow the constant pool over time so commits introduce
        // genuinely new constants (universe growth + residual rules).
        let n_consts = 3 + step.min(3);
        // Within one commit, asserts apply before retracts whatever the
        // issue order (the session's documented batch semantics) — the
        // bookkeeping below mirrors that.
        let batched = rng.chance(0.4);
        if batched {
            session.begin().expect("begin");
        }
        let mut asserts: Vec<String> = Vec::new();
        let mut retracts: Vec<String> = Vec::new();
        for _ in 0..1 + rng.below(3) {
            match rng.below(5) {
                // Assert 1–2 facts (fresh, duplicate, or re-assert).
                0 | 1 | 3 => {
                    for _ in 0..1 + rng.below(2) {
                        let f = walk_fact(&mut rng, n_consts);
                        session.assert_facts(&f).expect("assert");
                        seen.extend(consts_in(&f));
                        asserts.push(f);
                    }
                }
                // Retract an active (or sometimes never-asserted) fact.
                2 => {
                    let f = if !active.is_empty() && rng.chance(0.8) {
                        active[rng.below(active.len())].clone()
                    } else {
                        walk_fact(&mut rng, n_consts)
                    };
                    session.retract_facts(&f).expect("retract");
                    retracts.push(f);
                }
                // Add a rule from the pool.
                _ => {
                    if !rules_left.is_empty() {
                        let r = rules_left.remove(rng.below(rules_left.len()));
                        session.add_rules(r).expect("add_rules");
                        sources.push(r.to_owned());
                    }
                }
            }
            if !batched {
                // Auto-committed: fold into the active set immediately.
                for f in asserts.drain(..) {
                    if !active.contains(&f) {
                        active.push(f);
                    }
                }
                for f in retracts.drain(..) {
                    active.retain(|g| g != &f);
                }
            }
        }
        if batched {
            session.commit().expect("commit");
            for f in asserts.drain(..) {
                if !active.contains(&f) {
                    active.push(f);
                }
            }
            for f in retracts.drain(..) {
                active.retain(|g| g != &f);
            }
        }

        // Oracle: ground + solve the merged program from scratch. The
        // `seen(c)` facts pin the rebuild's Herbrand universe to the
        // session's active domain (constants are never forgotten).
        let mut merged = sources.join("\n");
        for f in &active {
            merged.push('\n');
            merged.push_str(f);
        }
        for c in &seen {
            merged.push_str(&format!("\nseen(c{c})."));
        }
        let mut store2 = TermStore::new();
        let p2 = parse_program(&mut store2, &merged).expect("merged parses");
        let gp2 = Grounder::ground(&mut store2, &p2).expect("merged grounds");
        let m2 = well_founded_model(&gp2);

        // Every rebuild atom must agree with the session…
        let mut atoms = Vec::new();
        for id2 in gp2.atom_ids() {
            let name = gp2.display_atom(&store2, id2);
            if name.starts_with("seen(") {
                continue;
            }
            let got = session.truth(&format!("?- {name}.")).expect("ground query");
            assert_eq!(
                got,
                m2.truth(id2),
                "seed {seed} step {step}: {name} diverges (session {got})"
            );
            atoms.push((name, m2.truth(id2)));
        }
        // …and session atoms the rebuild never interned must be false.
        let sess_names: Vec<String> = session
            .ground_program()
            .atom_ids()
            .map(|id| {
                (
                    session.ground_program().display_atom(session.store(), id),
                    session.model().truth(id),
                )
            })
            .filter(|(name, _)| {
                let g = parse_goal(&mut store2, &format!("?- {name}.")).expect("atom parses");
                gp2.lookup_atom(&g.literals()[0].atom).is_none()
            })
            .map(|(name, truth)| {
                assert_eq!(
                    truth,
                    Truth::False,
                    "seed {seed} step {step}: session-only atom {name} must be false"
                );
                name
            })
            .collect();
        let _ = sess_names;

        // Snapshot read from `threads` workers: same verdicts.
        let parsed: Vec<Atom> = {
            let mut s = session.store().clone();
            atoms
                .iter()
                .map(|(name, _)| {
                    parse_goal(&mut s, &format!("?- {name}."))
                        .expect("atom parses")
                        .literals()[0]
                        .atom
                        .clone()
                })
                .collect()
        };
        let snapshot = session.snapshot();
        let verdicts = gsls_par::par_map(threads, parsed.len(), |i| {
            snapshot.truth_of_atom(&parsed[i])
        });
        for (i, (name, want)) in atoms.iter().enumerate() {
            assert_eq!(
                verdicts[i], *want,
                "seed {seed} step {step}: snapshot read of {name} diverges at {threads} threads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The PR 5 acceptance property: session maintenance ≡ rebuild
    /// after every commit of a random update walk.
    #[test]
    fn session_random_walk_matches_rebuild(seed in any::<u64>()) {
        session_walk(seed, 8);
    }
}

/// A fixed-seed long walk that stays in the suite even when the
/// property harness samples few cases (and the `GSLS_THREADS=2` gate in
/// check.sh reruns exactly this under two worker threads).
#[test]
fn session_walk_fixed_seeds() {
    for seed in [3, 7, 0xdeadbeef] {
        session_walk(seed, 12);
    }
}

/// The motivating workload: successive `A(S)` contexts on the van Gelder
/// chain differ in O(1) atoms, so difference-driven restarts must do
/// strictly less clause-recheck and enqueue work than `reduct_calls`
/// from-scratch evaluations would.
#[test]
fn incremental_restarts_beat_scratch_work_on_van_gelder() {
    let mut store = TermStore::new();
    let program = van_gelder_program(&mut store);
    let gp = Grounder::ground_with(
        &mut store,
        &program,
        GrounderOpts {
            universe: HerbrandOpts {
                max_depth: 64,
                max_terms: 1_000_000,
            },
            ..GrounderOpts::default()
        },
    )
    .expect("van_gelder grounds");
    let (model, stats) = well_founded_model_with_stats(&gp);
    assert_eq!(model, well_founded_model_scratch(&gp));
    assert!(stats.reduct_calls > 100, "chain forces many rounds");
    // From-scratch restarts check every clause on every call; the
    // incremental path pays two priming scans plus deltas. Demand an
    // order of magnitude, not just "strictly less".
    let scratch_checks = stats.reduct_calls as u64 * gp.clause_count() as u64;
    assert!(
        stats.clause_checks * 10 < scratch_checks,
        "incremental clause checks {} vs from-scratch {}",
        stats.clause_checks,
        scratch_checks
    );
    // Enqueue work: from-scratch re-derives every atom of A(S) on every
    // call (≈ reduct_calls × |model|); incremental enqueues are bounded
    // by deltas and must come in far below.
    let scratch_enqueues = stats.reduct_calls as u64 * model.pos().count() as u64;
    assert!(
        stats.enqueues < scratch_enqueues / 10,
        "incremental enqueues {} vs from-scratch {}",
        stats.enqueues,
        scratch_enqueues
    );
}

/// The grid board grounds to all three truth values at a size where
/// from-scratch restarts would already hurt, and the engines agree.
#[test]
fn grid_board_engines_agree() {
    let mut store = TermStore::new();
    let program = win_grid(&mut store, 24, 24);
    let gp = Grounder::ground(&mut store, &program).expect("grid grounds");
    let incremental = well_founded_model(&gp);
    assert_eq!(incremental, well_founded_model_scratch(&gp));
    let mut truths = [0usize; 3];
    for a in gp.atom_ids() {
        truths[incremental.truth(a) as usize] += 1;
    }
    assert!(
        truths.iter().all(|&c| c > 0),
        "all three values: {truths:?}"
    );
}
