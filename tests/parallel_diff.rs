//! Determinism gate for the `gsls-par` runtime (PR 4).
//!
//! The parallel subsystems must be **invisible** semantically:
//!
//! * the parallel tabled engine's verdicts ≡ the sequential tabled
//!   engine's ≡ the bottom-up `well_founded_model`, at 1, 2 and 8
//!   worker threads (plus whatever [`gsls_par::threads`] resolves to —
//!   `scripts/check.sh` re-runs this suite with `GSLS_THREADS=2`), on
//!   the named workloads and on random propositional/relational
//!   programs;
//! * the sharded parallel seed round emits exactly the clause set of
//!   the sequential planned path (which `grounding_diff.rs` already
//!   pins against the naive oracle), at every thread count.
//!
//! Everything here runs on a 1-CPU container just as meaningfully as on
//! a 64-core box: the scheduler's determinism contract is that thread
//! count never changes results, so oversubscription (8 workers on one
//! core) is itself a useful schedule-perturbation test.

use gsls_core::TabledEngine;
use gsls_ground::testutil::sorted_clauses;
use gsls_ground::{GroundProgram, Grounder, GrounderOpts, HerbrandOpts, JoinStrategy};
use gsls_lang::{Program, TermStore};
use gsls_wfs::well_founded_model;
use gsls_workloads::{
    negated_reachability, odd_even_chain, random_program, random_relational_program,
    van_gelder_program, win_chain, win_cycle, win_grid, win_random, RandomProgramOpts,
    RandomRelationalOpts,
};
use proptest::prelude::*;

/// The thread counts every diff runs at: sequential, a modest pool, an
/// oversubscribed pool, and the environment-resolved count (the
/// `GSLS_THREADS` override or hardware parallelism).
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 8, gsls_par::threads()];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn ground(mk: impl Fn(&mut TermStore) -> Program) -> (TermStore, GroundProgram) {
    let mut store = TermStore::new();
    let program = mk(&mut store);
    let gp = Grounder::ground(&mut store, &program).expect("workload grounds");
    (store, gp)
}

/// Parallel tabled ≡ sequential tabled ≡ well-founded model, over every
/// atom of the ground program, at every thread count.
fn assert_tabled_parallel_agrees(gp: &GroundProgram, what: &str) {
    let wfm = well_founded_model(gp);
    let mut seq = TabledEngine::new(gp.clone());
    for a in gp.atom_ids() {
        assert_eq!(
            seq.truth(a),
            wfm.truth(a),
            "sequential vs wfm: {a:?} in {what}"
        );
    }
    for &threads in &thread_counts()[1..] {
        let mut par = TabledEngine::new(gp.clone());
        for a in gp.atom_ids() {
            assert_eq!(
                par.truth_parallel(a, threads),
                wfm.truth(a),
                "parallel ({threads} threads) vs wfm: {a:?} in {what}"
            );
        }
        assert_eq!(
            par.tabled_count(),
            seq.tabled_count(),
            "memo coverage diverged at {threads} threads in {what}"
        );
    }
}

/// A named workload generator for the tabled diff table.
type Workload = (&'static str, fn(&mut TermStore) -> Program);

#[test]
fn tabled_parallel_matches_on_named_workloads() {
    let cases: Vec<Workload> = vec![
        ("win_chain 40", |s| win_chain(s, 40)),
        ("win_cycle 9", |s| win_cycle(s, 9)),
        ("win_grid 8x9", |s| win_grid(s, 8, 9)),
        ("win_random 120", |s| win_random(s, 120, 3, 11)),
        ("negated_reachability 7", |s| negated_reachability(s, 7)),
        ("odd_even_chain 24", |s| odd_even_chain(s, 24)),
    ];
    for (what, mk) in cases {
        let (_, gp) = ground(mk);
        assert_tabled_parallel_agrees(&gp, what);
    }
}

#[test]
fn tabled_parallel_matches_on_van_gelder() {
    let mut store = TermStore::new();
    let program = van_gelder_program(&mut store);
    let gp = Grounder::ground_with(
        &mut store,
        &program,
        GrounderOpts {
            universe: HerbrandOpts {
                max_depth: 8,
                max_terms: 10_000,
            },
            ..GrounderOpts::default()
        },
    )
    .expect("van_gelder grounds");
    assert_tabled_parallel_agrees(&gp, "van_gelder depth 8");
}

proptest! {
    #[test]
    fn tabled_parallel_matches_on_random_programs(seed in 0u64..48) {
        let mut store = TermStore::new();
        let program = random_program(
            &mut store,
            RandomProgramOpts { atoms: 14, clauses: 26, ..RandomProgramOpts::default() },
            seed,
        );
        let gp = Grounder::ground(&mut store, &program).expect("random program grounds");
        assert_tabled_parallel_agrees(&gp, &format!("random_program seed {seed}"));
    }

    #[test]
    fn tabled_parallel_matches_on_random_relational_programs(seed in 0u64..24) {
        let mut store = TermStore::new();
        let program = random_relational_program(
            &mut store,
            RandomRelationalOpts { facts: 14, rules: 6, ..RandomRelationalOpts::default() },
            seed,
        );
        let gp = Grounder::ground(&mut store, &program).expect("relational program grounds");
        assert_tabled_parallel_agrees(&gp, &format!("random_relational seed {seed}"));
    }
}

/// The sharded seed round must emit the sequential clause set exactly.
fn assert_grounding_threads_agree(mk: impl Fn(&mut TermStore) -> Program, what: &str) {
    let (seq_store, seq) = ground(&mk);
    let seq_lines = sorted_clauses(&seq_store, &seq);
    for &threads in &thread_counts()[1..] {
        let mut store = TermStore::new();
        let program = mk(&mut store);
        let par = Grounder::ground_with(
            &mut store,
            &program,
            GrounderOpts {
                threads,
                ..GrounderOpts::default()
            },
        )
        .expect("parallel grounding succeeds");
        assert_eq!(
            sorted_clauses(&store, &par),
            seq_lines,
            "sharded seed diverged at {threads} threads on {what}"
        );
        // And the naive oracle still holds through the parallel path.
        let mut store_n = TermStore::new();
        let program_n = mk(&mut store_n);
        let naive = Grounder::ground_with(
            &mut store_n,
            &program_n,
            GrounderOpts {
                strategy: JoinStrategy::Naive,
                ..GrounderOpts::default()
            },
        )
        .expect("naive grounding succeeds");
        assert_eq!(
            sorted_clauses(&store, &par),
            sorted_clauses(&store_n, &naive),
            "parallel vs naive divergence on {what}"
        );
    }
}

#[test]
fn sharded_grounding_matches_on_workloads() {
    assert_grounding_threads_agree(|s| win_grid(s, 12, 12), "win_grid 12x12");
    assert_grounding_threads_agree(|s| negated_reachability(s, 8), "negated_reachability 8");
    assert_grounding_threads_agree(|s| win_random(s, 200, 3, 7), "win_random 200");
}

proptest! {
    #[test]
    fn sharded_grounding_matches_on_random_relational(seed in 0u64..16) {
        let opts = RandomRelationalOpts { facts: 30, rules: 6, ..RandomRelationalOpts::default() };
        assert_grounding_threads_agree(
            |s| random_relational_program(s, opts, seed),
            &format!("random_relational seed {seed}"),
        );
    }
}

/// The env override plumbing the check.sh gate relies on.
#[test]
fn thread_count_override_parses() {
    assert_eq!(gsls_par::threads_from(Some("2")), 2);
    assert_eq!(gsls_par::threads_from(Some("8")), 8);
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    assert_eq!(gsls_par::threads_from(None), hw);
    assert!(thread_counts().contains(&gsls_par::threads()));
}
