//! Experiments E1–E5: every worked example and figure of the paper.
//!
//! * E1 — Example 3.1 / Figures 1–4 (Van Gelder's ordinal-level program);
//! * E2 — Example 3.2 (non-positivistic rules lose completeness);
//! * E3 — Example 3.3 (sequential negative expansion loses completeness);
//! * E4 — Example 6.1 / Definition 6.1 (universal query problem and the
//!   augmented program);
//! * E5 — the Section 6 floundering example and the `term/1` transform.

use global_sls::internals::*;
use global_sls::prelude::*;
use gsls_core::GlobalOpts;

// ---------------------------------------------------------------- E1 --

const VAN_GELDER: &str = gsls_workloads::VAN_GELDER_SRC;

fn vg_numeral(n: usize) -> String {
    let mut t = "0".to_owned();
    for _ in 0..n {
        t = format!("s({t})");
    }
    t
}

/// Figures 1–3: the SLP-trees for `w_i`, `u_i` have the shapes shown in
/// the paper — one leaf `{~u(i)}` for the w-trees; the u-trees branch
/// over the `e` facts.
#[test]
fn example_3_1_slp_tree_shapes() {
    let mut store = TermStore::new();
    let program = parse_program(&mut store, VAN_GELDER).unwrap();
    // Figure 1: SLP-tree for w(s(0)) has exactly one active leaf ~u(s(0)).
    let goal = parse_goal(&mut store, &format!("?- w({}).", vg_numeral(1))).unwrap();
    let tree = SlpTree::build(&mut store, &program, &goal, SlpOpts::default());
    let leaves = tree.active_leaves();
    assert_eq!(leaves.len(), 1);
    let leaf = &tree.nodes()[leaves[0] as usize];
    assert_eq!(leaf.goal.len(), 1);
    assert_eq!(
        leaf.goal.literals()[0].display(&store),
        format!("~u({})", vg_numeral(1))
    );
    // Figure 2: the SLP-tree for u(s(s(0))) ends in a leaf ~w(s(0)).
    let goal = parse_goal(&mut store, &format!("?- u({}).", vg_numeral(2))).unwrap();
    let tree = SlpTree::build(&mut store, &program, &goal, SlpOpts::default());
    let leaves = tree.active_leaves();
    assert_eq!(leaves.len(), 1, "only e(s(0), s(s(0))) feeds u(s²(0))");
    let leaf = &tree.nodes()[leaves[0] as usize];
    assert_eq!(
        leaf.goal.literals()[0].display(&store),
        format!("~w({})", vg_numeral(1))
    );
}

/// Figure 4 + Example 3.1 claims: `w(sⁿ(0))` is successful with level
/// `2n`, each `u(sⁿ(0))` is failed, and `w(0)` is true although the
/// program is not locally stratified.
#[test]
fn example_3_1_levels_are_2n() {
    let mut store = TermStore::new();
    let program = parse_program(&mut store, VAN_GELDER).unwrap();
    for n in 1..=5usize {
        let goal = parse_goal(&mut store, &format!("?- w({}).", vg_numeral(n))).unwrap();
        let tree = GlobalTree::build(&mut store, &program, &goal, GlobalOpts::default());
        assert_eq!(tree.status(), Status::Successful, "w(s^{n}(0))");
        assert_eq!(
            tree.root().level_succ,
            Some(Ordinal::finite(2 * n as u64)),
            "level of ← w(s^{n}(0)) must be 2·{n}"
        );
    }
    for n in 1..=5usize {
        let goal = parse_goal(&mut store, &format!("?- u({}).", vg_numeral(n))).unwrap();
        let tree = GlobalTree::build(&mut store, &program, &goal, GlobalOpts::default());
        assert_eq!(tree.status(), Status::Failed, "u(s^{n}(0))");
    }
}

/// The symbolic ω-level computation of Example 3.1: following the global
/// tree recurrences with the family levels `level(w(sⁿ(0))) = 2n`
/// (verified above), `lub{2n : n} = ω` gives `fail(u(0)) = ω+1` and
/// `succ(w(0)) = ω+2`.
#[test]
fn example_3_1_w0_level_omega_plus_2() {
    let family_lub = Ordinal::omega_limit();
    let fail_u0 = family_lub.succ();
    let succ_w0 = fail_u0.succ();
    assert_eq!(succ_w0.to_string(), "ω + 2");
    assert!(succ_w0.is_successor());
    assert!(!succ_w0.is_finite());
}

/// `w(0)` has level ω + 2: failing `u(0)` requires checking infinitely
/// many active leaves `{¬w(sⁿ(0))}`, so the *budgeted* tree engine must
/// report indeterminate-by-budget — the paper's noneffectiveness in the
/// flesh — while the depth-bounded bottom-up model (the substitution of
/// DESIGN.md §4) confirms `w(0)` is true.
#[test]
fn example_3_1_w0_needs_transfinite_level() {
    let mut store = TermStore::new();
    let program = parse_program(&mut store, VAN_GELDER).unwrap();
    let goal = parse_goal(&mut store, "?- w(0).").unwrap();
    let tree = GlobalTree::build(&mut store, &program, &goal, GlobalOpts::default());
    assert_eq!(tree.status(), Status::Indeterminate);
    assert!(tree.budget_hit(), "indeterminacy is a budget artefact here");
    // Ground truth via the depth-bounded well-founded model.
    let gp = Grounder::ground_with(
        &mut store,
        &program,
        GrounderOpts {
            universe: HerbrandOpts {
                max_depth: 8,
                max_terms: 10_000,
            },
            ..GrounderOpts::default()
        },
    )
    .unwrap();
    let model = well_founded_model(&gp);
    let w0 = gp
        .atom_ids()
        .find(|&a| gp.display_atom(&store, a) == "w(0)")
        .expect("w(0) interned");
    assert_eq!(model.truth(w0), Truth::True);
}

/// The rendered global tree for `← w(s(0))` has the Figure 4 structure:
/// alternating `[w…]` / `(not …)` / `[u…]` layers.
#[test]
fn example_3_1_figure_4_rendering() {
    let mut store = TermStore::new();
    let program = parse_program(&mut store, VAN_GELDER).unwrap();
    let goal = parse_goal(&mut store, &format!("?- w({}).", vg_numeral(1))).unwrap();
    let tree = GlobalTree::build(&mut store, &program, &goal, GlobalOpts::default());
    let text = render_global(&store, &tree);
    assert!(text.contains("[w(s(0))]"), "{text}");
    assert!(text.contains("(not: ~u(s(0)))"), "{text}");
    assert!(text.contains("[u(s(0))]"), "{text}");
    assert!(text.contains("successful, level 2"), "{text}");
}

// ---------------------------------------------------------------- E2 --

const EX32: &str = "p :- q, ~r. q :- r, ~p. r :- p, ~q. s :- ~p, ~q, ~r.";

/// Example 3.2: the well-founded model is {s, ¬p, ¬q, ¬r}; the
/// preferential rule proves ← s, the non-positivistic leftmost rule
/// reports it indeterminate.
#[test]
fn example_3_2_rule_comparison() {
    let mut store = TermStore::new();
    let program = parse_program(&mut store, EX32).unwrap();
    let goal = parse_goal(&mut store, "?- s.").unwrap();
    assert_eq!(
        deviant_evaluate(
            &mut store,
            &program,
            &goal,
            RuleKind::Preferential,
            DeviantOpts::default()
        ),
        Verdict::Successful
    );
    assert_eq!(
        deviant_evaluate(
            &mut store,
            &program,
            &goal,
            RuleKind::LeftmostLiteral,
            DeviantOpts::default()
        ),
        Verdict::Indeterminate
    );
    // Ground truth from the bottom-up model.
    let mut solver = Solver::new(parse_program(&mut store, EX32).unwrap());
    let r = solver.query(&mut store, &goal, Engine::Tabled).unwrap();
    assert_eq!(r.truth, Truth::True);
}

// ---------------------------------------------------------------- E3 --

/// Example 3.3 (function-free analogue; EXPERIMENTS.md documents the
/// reconstruction): WFM = {s, ¬q}, p undefined. Parallel expansion fails
/// ← q; sequential expansion of the leftmost negative literal gets stuck
/// on the undefined ¬p.
#[test]
fn example_3_3_parallel_vs_sequential() {
    const EX33: &str = "p :- ~p. q :- ~p, ~s. s.";
    let mut store = TermStore::new();
    let program = parse_program(&mut store, EX33).unwrap();
    let goal = parse_goal(&mut store, "?- q.").unwrap();
    assert_eq!(
        deviant_evaluate(
            &mut store,
            &program,
            &goal,
            RuleKind::Preferential,
            DeviantOpts::default()
        ),
        Verdict::Failed
    );
    assert_eq!(
        deviant_evaluate(
            &mut store,
            &program,
            &goal,
            RuleKind::SequentialNegative,
            DeviantOpts::default()
        ),
        Verdict::Indeterminate
    );
    let mut solver = Solver::new(parse_program(&mut store, EX33).unwrap());
    let r = solver.query(&mut store, &goal, Engine::Tabled).unwrap();
    assert_eq!(r.truth, Truth::False, "¬q is in the well-founded model");
}

/// Example 3.3, original functional form: `p(X) ← ¬p(f(X))` makes every
/// `p(t)` undefined; `q ← ¬p(a), ¬s` with `s` a fact still fails under
/// parallel expansion.
#[test]
fn example_3_3_functional_form() {
    const SRC: &str = "p(X) :- ~p(f(X)). q :- ~p(a), ~s. s.";
    let mut store = TermStore::new();
    let program = parse_program(&mut store, SRC).unwrap();
    let goal = parse_goal(&mut store, "?- q.").unwrap();
    let tree = GlobalTree::build(&mut store, &program, &goal, GlobalOpts::default());
    assert_eq!(
        tree.status(),
        Status::Failed,
        "parallel sees the failing ~s"
    );
}

// ---------------------------------------------------------------- E4 --

/// Example 6.1: with P = {p(a)}, the query p(X) only gets the answer
/// X = a (no identity answer), and adding the unrelated fact q(b) makes
/// ∀x p(x) false in some Herbrand models. The augmented program P′
/// provides the extra ground terms.
#[test]
fn example_6_1_universal_query_problem() {
    let mut store = TermStore::new();
    let program = parse_program(&mut store, "p(a).").unwrap();
    // Plain program: the only answer is X = a.
    let goal = parse_goal(&mut store, "?- p(X).").unwrap();
    let mut solver = Solver::new(program.clone());
    let r = solver.query(&mut store, &goal, Engine::Tabled).unwrap();
    assert_eq!(r.answers.len(), 1);
    assert_eq!(r.answers[0].display(&store), "{X = a}");
    // Augmented program: Herbrand universe gains infinitely many terms
    // f̂ⁿ(ĉ) not mentioned in P, so p(f̂(ĉ)) is false — witnessing that
    // ∀x p(x) does not follow from P.
    let augmented = augment_program(&mut store, &program);
    assert!(!augmented.is_function_free(&store));
    let witness = parse_goal(&mut store, "?- p(f_hat(c_hat)).").unwrap();
    let tree = GlobalTree::build(&mut store, &augmented, &witness, GlobalOpts::default());
    assert_eq!(tree.status(), Status::Failed);
    // …while p(a) still succeeds in P′.
    let pa = parse_goal(&mut store, "?- p(a).").unwrap();
    let tree = GlobalTree::build(&mut store, &augmented, &pa, GlobalOpts::default());
    assert_eq!(tree.status(), Status::Successful);
}

// ---------------------------------------------------------------- E5 --

const FLOUNDER: &str = "p(X) :- ~q(f(X)). q(a).";

/// Section 6's floundering example: ← p(X) flounders while every ground
/// instance succeeds.
#[test]
fn floundering_example() {
    let mut store = TermStore::new();
    let program = parse_program(&mut store, FLOUNDER).unwrap();
    let goal = parse_goal(&mut store, "?- p(X).").unwrap();
    let tree = GlobalTree::build(&mut store, &program, &goal, GlobalOpts::default());
    assert_eq!(tree.status(), Status::Floundered);
    for t in ["a", "f(a)"] {
        let g = parse_goal(&mut store, &format!("?- p({t}).")).unwrap();
        let tree = GlobalTree::build(&mut store, &program, &g, GlobalOpts::default());
        assert_eq!(tree.status(), Status::Successful, "p({t})");
    }
}

/// The `term/1` transform de-flounders the query without changing the
/// well-founded truths of original-predicate atoms.
#[test]
fn floundering_fixed_by_term_transform() {
    let mut store = TermStore::new();
    let program = parse_program(&mut store, FLOUNDER).unwrap();
    let transformed = term_transform(&mut store, &program);
    assert!(transformed.is_allowed(&store));
    let goal = parse_goal(&mut store, "?- p(X).").unwrap();
    let guarded = gsls_ground::herbrand::guard_goal(&mut store, &goal);
    let tree = GlobalTree::build(&mut store, &transformed, &guarded, GlobalOpts::default());
    // No floundering: the guarded query enumerates term(X) bindings; with
    // budgets it finds at least the shallow successful instances.
    assert_eq!(tree.status(), Status::Successful);
    // Ground truths preserved.
    let g = parse_goal(&mut store, "?- p(a).").unwrap();
    let t1 = GlobalTree::build(&mut store, &program, &g, GlobalOpts::default());
    let t2 = GlobalTree::build(&mut store, &transformed, &g, GlobalOpts::default());
    assert_eq!(t1.status(), t2.status());
}
