//! Experiment E11 — the Section 1 semantics landscape:
//! Fitting ⊑ WFS (information order), WFS ⊑ every stable model, a total
//! WFM is the unique stable model, and the classic separating examples.

use global_sls::prelude::*;
use gsls_ground::GroundingMode;
use gsls_workloads::{random_program, RandomProgramOpts};

fn ground_full(store: &mut TermStore, program: &Program) -> GroundProgram {
    Grounder::ground_with(
        store,
        program,
        GrounderOpts {
            mode: GroundingMode::Full,
            ..GrounderOpts::default()
        },
    )
    .unwrap()
}

#[test]
fn fitting_below_wfs_on_random_programs() {
    let opts = RandomProgramOpts::default();
    for seed in 0..120u64 {
        let mut store = TermStore::new();
        let program = random_program(&mut store, opts, seed);
        let gp = ground_full(&mut store, &program);
        let fit = fitting_model(&gp);
        let wfm = well_founded_model(&gp);
        assert!(fit.leq(&wfm), "Fitting ⊑ WFS violated at seed {seed}");
    }
}

#[test]
fn wfs_within_every_stable_model_on_random_programs() {
    let opts = RandomProgramOpts {
        atoms: 8,
        clauses: 12,
        max_body: 2,
        neg_prob: 0.6,
    };
    for seed in 0..80u64 {
        let mut store = TermStore::new();
        let program = random_program(&mut store, opts, seed);
        let gp = ground_full(&mut store, &program);
        let wfm = well_founded_model(&gp);
        assert!(
            gsls_wfs::wfm_within_all_stable(&gp, &wfm),
            "WFM ⊄ stable model at seed {seed}"
        );
    }
}

#[test]
fn total_wfm_is_unique_stable_model() {
    for seed in 200..260u64 {
        let mut store = TermStore::new();
        let program = random_program(&mut store, RandomProgramOpts::default(), seed);
        let gp = ground_full(&mut store, &program);
        let wfm = well_founded_model(&gp);
        if wfm.is_total() {
            let models = stable_models(&gp, 16);
            assert_eq!(models.len(), 1, "seed {seed}");
            for a in gp.atom_ids() {
                assert_eq!(models[0].contains(a.index()), wfm.is_true(a), "seed {seed}");
            }
        }
    }
}

#[test]
fn classic_separating_programs() {
    // p ← p: Fitting undefined, WFS false.
    let mut store = TermStore::new();
    let program = parse_program(&mut store, "p :- p.").unwrap();
    let gp = ground_full(&mut store, &program);
    let p = gp.atom_ids().next().unwrap();
    assert_eq!(fitting_model(&gp).truth(p), Truth::Undefined);
    assert_eq!(well_founded_model(&gp).truth(p), Truth::False);

    // p ← ¬p: no stable model, WFS undefined.
    let mut store = TermStore::new();
    let program = parse_program(&mut store, "p :- ~p.").unwrap();
    let gp = ground_full(&mut store, &program);
    assert!(stable_models(&gp, 4).is_empty());
    let p = gp.atom_ids().next().unwrap();
    assert_eq!(well_founded_model(&gp).truth(p), Truth::Undefined);

    // a∨b choice + shared consequence: stable-intersection decides c,
    // WFS leaves it undefined (the stable semantics is stronger).
    let mut store = TermStore::new();
    let program = parse_program(&mut store, "a :- ~b. b :- ~a. c :- a. c :- b.").unwrap();
    let gp = ground_full(&mut store, &program);
    let c = gp
        .atom_ids()
        .find(|&x| gp.display_atom(&store, x) == "c")
        .unwrap();
    let inter = gsls_wfs::stable_intersection(&gp).unwrap();
    assert!(inter.contains(c.index()));
    assert_eq!(well_founded_model(&gp).truth(c), Truth::Undefined);
}

#[test]
fn wfs_equals_fitting_plus_unfounded_detection() {
    // On programs whose positive part is acyclic, Fitting and WFS agree.
    for src in [
        "q. p :- ~q. r :- ~p.",
        "a :- ~b. b :- ~a.",
        "x :- y, ~z. y. z :- ~x.",
    ] {
        let mut store = TermStore::new();
        let program = parse_program(&mut store, src).unwrap();
        let gp = ground_full(&mut store, &program);
        assert_eq!(fitting_model(&gp), well_founded_model(&gp), "{src}");
    }
}
