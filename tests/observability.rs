//! End-to-end tests of the unified observability layer (`gsls-obs`
//! threaded through the session): counter monotonicity, per-phase
//! commit histograms summing to the total, snapshot consistency from a
//! second thread mid-commit, the bounded event ring, and guard-trip
//! forensics.

use global_sls::prelude::*;
use std::time::{Duration, Instant};

fn unique_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gsls-obs-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Engine counters only ever grow, and the commit counters track the
/// committed work exactly across a mixed walk of commits.
#[test]
fn counters_are_monotone_across_commits() {
    let mut s = Session::from_source("t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).").unwrap();
    let mut last = s.metrics();
    for i in 0..20u32 {
        s.assert_facts(&format!("e(n{i}, n{}).", i + 1)).unwrap();
        let m = s.metrics();
        for (name, v) in &m.counters {
            let before = last.counter(name).unwrap_or(0);
            assert!(
                *v >= before,
                "counter {name} went backwards: {before} -> {v}"
            );
        }
        assert_eq!(m.counter("commit.count"), Some(u64::from(i) + 1));
        last = m;
    }
    assert_eq!(last.counter("commit.facts_asserted"), Some(20));
    assert!(last.counter("ground.join_candidates").unwrap_or(0) > 0);
    assert!(last.counter("lfp.evaluations").unwrap_or(0) > 0);
    // Retraction feeds the delete-and-rederive cone histogram.
    s.retract_facts("e(n0, n1).").unwrap();
    let m = s.metrics();
    assert_eq!(m.counter("commit.facts_retracted"), Some(1));
    let cone = m.histogram("lfp.retraction_cone").expect("cone recorded");
    assert!(cone.count >= 1, "retraction must record a cone size");
}

/// On a durable governed commit all six pipeline phases record exactly
/// once, and their durations sum to ≈ the measured commit wall time.
#[test]
fn phase_histograms_cover_the_commit() {
    let dir = unique_dir("phases");
    let dopts = DurableOpts {
        // Never auto-checkpoint mid-walk: keeps `commit.total` equal to
        // the six phases plus loop glue.
        checkpoint_records: usize::MAX,
        checkpoint_bytes: u64::MAX,
        ..DurableOpts::default()
    };
    let mut s = Session::open_with(&dir, Default::default(), dopts).unwrap();
    s.add_rules("t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).")
        .unwrap();
    let before = s.metrics();

    const PHASES: [&str; 6] = [
        "commit.validate",
        "commit.admission",
        "commit.journal",
        "commit.ground",
        "commit.refresh",
        "commit.index",
    ];
    const N: u64 = 8;
    for i in 0..N {
        s.begin().unwrap();
        s.assert_facts(&format!("e(p{i}, p{}).", i + 1)).unwrap();
        // `commit_with` (even unrestricted) runs the admission phase.
        s.commit_with(&CommitOpts::none()).unwrap();
    }

    let after = s.metrics();
    let mut phase_sum = 0u64;
    for name in PHASES {
        let h0 = before.histogram(name).copied().unwrap_or_default();
        let h1 = after.histogram(name).copied().unwrap_or_default();
        assert_eq!(
            h1.count - h0.count,
            N,
            "phase {name} must record once per commit"
        );
        phase_sum += h1.sum - h0.sum;
    }
    let t0 = before
        .histogram("commit.total")
        .copied()
        .unwrap_or_default();
    let t1 = after.histogram("commit.total").copied().unwrap_or_default();
    assert_eq!(t1.count - t0.count, N);
    let total = t1.sum - t0.sum;
    assert!(
        phase_sum <= total,
        "phases ({phase_sum}ns) cannot exceed the total ({total}ns)"
    );
    assert!(
        phase_sum * 2 >= total,
        "phases ({phase_sum}ns) must account for most of the total ({total}ns)"
    );
    // WAL I/O counters moved with the journaled commits.
    let appends =
        after.counter("wal.appends").unwrap_or(0) - before.counter("wal.appends").unwrap_or(0);
    assert_eq!(appends, N, "one WAL append per durable commit");
    assert!(after.counter("wal.appended_bytes").unwrap_or(0) > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A second thread holding a cloned [`Obs`] can snapshot mid-commit:
/// every snapshot is internally consistent and the counters it sees
/// never move backwards.
#[test]
fn snapshots_from_a_second_thread_are_monotone() {
    let mut s = Session::from_source("w(X) :- e(X, Y), ~w(Y).").unwrap();
    let obs = s.obs();
    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let done2 = done.clone();
    let watcher = std::thread::spawn(move || {
        let mut last_commits = 0u64;
        let mut last_ground_sum = 0u64;
        let mut polls = 0u32;
        while !done2.load(std::sync::atomic::Ordering::Relaxed) {
            let m = obs.snapshot();
            let commits = m.counter("commit.count").unwrap_or(0);
            assert!(commits >= last_commits, "commit.count went backwards");
            last_commits = commits;
            if let Some(h) = m.histogram("commit.ground") {
                assert!(h.sum >= last_ground_sum, "histogram sum went backwards");
                assert!(h.max <= h.sum, "one observation cannot exceed the sum");
                last_ground_sum = h.sum;
            }
            polls += 1;
        }
        polls
    });
    for i in 0..60u32 {
        s.assert_facts(&format!("e(m{i}, m{}).", i + 1)).unwrap();
    }
    done.store(true, std::sync::atomic::Ordering::Relaxed);
    let polls = watcher.join().expect("watcher must not panic");
    assert!(polls > 0, "the watcher must have observed something");
    assert_eq!(s.metrics().counter("commit.count"), Some(60));
}

/// The trace ring is bounded: a long commit walk never grows it past
/// its capacity, drains come out in order, and draining empties it.
#[test]
fn event_ring_stays_bounded() {
    let mut s = Session::new();
    for i in 0..1000u32 {
        s.assert_facts(&format!("f(k{i}).")).unwrap();
    }
    let events = s.recent_events();
    assert!(
        events.len() <= global_sls::obs::DEFAULT_RING_CAPACITY,
        "ring must stay bounded: {} events",
        events.len()
    );
    assert!(!events.is_empty());
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq, "events must drain oldest-first");
    }
    // 1000 commits × several spans each — the ring must have evicted.
    assert!(events.last().unwrap().seq > events.len() as u64);
    assert!(s.recent_events().is_empty(), "drain must empty the ring");
}

/// A tripped guard leaves forensics behind: the error carries the
/// resource readings, the trip counter increments, and a `guard.trip`
/// event lands in the ring.
#[test]
fn guard_trips_leave_forensics() {
    let mut s = Session::from_source("t(X, Z) :- e(X, Y), t(Y, Z). t(X, Y) :- e(X, Y).").unwrap();
    s.begin().unwrap();
    // A 12-clique: enough join work that the guard polls mid-commit.
    for i in 0..12u32 {
        for j in 0..12u32 {
            if i != j {
                s.assert_facts(&format!("e(q{i}, q{j}).")).unwrap();
            }
        }
    }
    let opts = CommitOpts {
        deadline: Some(Instant::now() - Duration::from_millis(5)),
        ..CommitOpts::default()
    };
    let err = s.commit_with(&opts).unwrap_err();
    match err {
        SessionError::Interrupted { cause, trip, .. } => {
            assert_eq!(cause, InterruptCause::DeadlineExceeded);
            let over = trip.deadline_over_ns.expect("deadline reading captured");
            assert!(over > 0, "tripped after the deadline passed");
            assert!(
                trip.memory_used_bytes.unwrap_or(0) > 0,
                "pre-rollback byte count captured"
            );
            // The readings render into the error message.
            assert!(format!(
                "{}",
                SessionError::Interrupted {
                    phase: InterruptPhase::Grounding,
                    cause,
                    trip
                }
            )
            .contains("deadline_over_ns"));
        }
        other => panic!("expected an interrupt, got {other:?}"),
    }
    let m = s.metrics();
    let trips: u64 = m
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("guard.trips."))
        .map(|(_, v)| *v)
        .sum();
    assert!(trips >= 1, "the trip must be counted");
    let events = s.recent_events();
    let trip_ev = events
        .iter()
        .find(|e| e.label == "guard.trip")
        .expect("a guard.trip event must be recorded");
    let detail = trip_ev.detail.as_deref().unwrap_or("");
    assert!(detail.contains("cause=deadline exceeded") || detail.contains("cause="));
    assert!(detail.contains("deadline_over_ns"));
}

/// Query-path counters: executions, streamed answers, and the
/// point-lookup vs. residual-scan split — also from snapshots on
/// another thread.
#[test]
fn query_counters_track_execution_shape() {
    let mut s = Session::from_source("move(a, b). move(b, a). move(b, c).").unwrap();
    let q = s.query("?- move(a, X).").unwrap();
    assert_eq!(q.answers.len(), 1);
    let m = s.metrics();
    assert_eq!(m.counter("query.executions"), Some(1));
    assert!(m.counter("query.answers").unwrap_or(0) >= 1);
    assert!(
        m.counter("query.scans").unwrap_or(0) >= 1,
        "an open variable forces a predicate scan"
    );
    // Fully-ground query → point lookup.
    assert_eq!(s.truth("?- move(b, c).").unwrap(), Truth::True);
    let m = s.metrics();
    assert!(m.counter("query.point_lookups").unwrap_or(0) >= 1);

    // Snapshot reads from another thread keep counting into the
    // session's registry.
    let snap = s.snapshot();
    let pq = s.prepare("?- move(X, Y).").unwrap();
    let before = s.metrics().counter("query.executions").unwrap_or(0);
    let n = std::thread::spawn(move || pq.execute_on(&snap).unwrap().count())
        .join()
        .unwrap();
    assert_eq!(n, 3);
    let after = s.metrics().counter("query.executions").unwrap_or(0);
    assert_eq!(after, before + 1, "snapshot reads count as executions");
}

/// Disabling the bundle stops recording without disturbing what was
/// already recorded; re-enabling resumes.
#[test]
fn runtime_disable_freezes_recording() {
    let mut s = Session::from_source("p(a).").unwrap();
    s.assert_facts("p(b).").unwrap();
    assert_eq!(s.metrics().counter("commit.count"), Some(1));
    s.obs().set_enabled(false);
    s.assert_facts("p(c).").unwrap();
    let frozen = s.metrics();
    assert_eq!(
        frozen.counter("commit.count"),
        Some(1),
        "disabled bundle must not record"
    );
    s.obs().set_enabled(true);
    s.assert_facts("p(d).").unwrap();
    assert_eq!(s.metrics().counter("commit.count"), Some(2));
}
