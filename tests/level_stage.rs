//! Experiment E6 — Theorem 4.5 / Corollary 4.6: the level of a ground
//! goal in the global tree equals the stage of the corresponding literal
//! in the `V_P` iteration of the well-founded model.

use global_sls::internals::*;
use global_sls::prelude::*;
use gsls_core::GlobalOpts;
use gsls_workloads::{odd_even_chain, random_program, win_chain, RandomProgramOpts};
use proptest::prelude::*;

/// Asserts level ≡ stage for every determined atom of `program`.
fn check_level_stage(store: &mut TermStore, program: &Program) {
    let gp = Grounder::ground(store, program).unwrap();
    let staged = vp_iteration(&gp);
    for a in gp.atom_ids() {
        let atom = gp.atom(a).clone();
        let goal = Goal::new(vec![Literal::pos(atom.clone())]);
        let tree = GlobalTree::build(store, program, &goal, GlobalOpts::default());
        match staged.model.truth(a) {
            Truth::True => {
                let stage = staged.stage_of_true(a).expect("true atom has a stage");
                assert_eq!(
                    tree.root().level_succ,
                    Some(gsls_core::Ordinal::finite(u64::from(stage))),
                    "succ level ≠ stage for {}",
                    atom.display(store)
                );
            }
            Truth::False => {
                let stage = staged.stage_of_false(a).expect("false atom has a stage");
                assert_eq!(
                    tree.root().level_fail,
                    Some(gsls_core::Ordinal::finite(u64::from(stage))),
                    "fail level ≠ stage for {}",
                    atom.display(store)
                );
            }
            Truth::Undefined => {
                assert_eq!(tree.status(), gsls_core::Status::Indeterminate);
                assert!(tree.root().level_succ.is_none());
                assert!(tree.root().level_fail.is_none());
            }
        }
    }
}

#[test]
fn hand_programs() {
    for src in [
        "p.",
        "p :- ~q.",
        "a1 :- ~a2. a2 :- ~a3. a3.",
        "q. p :- ~q. r :- ~p.",
        "p :- q, ~r. q :- r, ~p. r :- p, ~q. s :- ~p, ~q, ~r.",
        "p :- ~p. q :- ~p, ~s. s.",
        "w :- ~l. l :- ~w2. w2 :- ~l2. l2.",
        "p :- q. q. r :- p, ~s.",
    ] {
        let mut store = TermStore::new();
        let program = parse_program(&mut store, src).unwrap();
        check_level_stage(&mut store, &program);
    }
}

#[test]
fn negation_chains_have_linear_stages() {
    // a0 ← ¬a1 … a(n−1) ← ¬an, an: stage(an)=1, and levels climb one per
    // negation, so level(a0) = n+1.
    for n in [1usize, 3, 7, 12] {
        let mut store = TermStore::new();
        let program = odd_even_chain(&mut store, n);
        check_level_stage(&mut store, &program);
        let goal = parse_goal(&mut store, "?- a0.").unwrap();
        let tree = GlobalTree::build(&mut store, &program, &goal, GlobalOpts::default());
        let expected = gsls_core::Ordinal::finite(n as u64 + 1);
        let level = if (n % 2) == 0 {
            tree.root().level_succ.clone()
        } else {
            tree.root().level_fail.clone()
        };
        assert_eq!(level, Some(expected), "chain n={n}");
    }
}

#[test]
fn win_chains() {
    for n in [2usize, 3, 5, 8] {
        let mut store = TermStore::new();
        let program = win_chain(&mut store, n);
        check_level_stage(&mut store, &program);
    }
}

#[test]
fn random_programs_level_stage() {
    let opts = RandomProgramOpts {
        atoms: 7,
        clauses: 12,
        max_body: 3,
        neg_prob: 0.5,
    };
    for seed in 0..60u64 {
        let mut store = TermStore::new();
        let program = random_program(&mut store, opts, seed);
        check_level_stage(&mut store, &program);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_level_equals_stage(
        seed in any::<u64>(),
        atoms in 2usize..7,
        clauses in 1usize..10,
    ) {
        let opts = RandomProgramOpts {
            atoms,
            clauses,
            max_body: 2,
            neg_prob: 0.5,
        };
        let mut store = TermStore::new();
        let program = random_program(&mut store, opts, seed);
        check_level_stage(&mut store, &program);
    }
}
