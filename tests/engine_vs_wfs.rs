//! Experiment E7 — soundness & completeness (Theorems 5.4 / 6.2):
//! the memoized top-down engine and the explicit global-tree engine must
//! agree with the bottom-up well-founded model on every atom of every
//! program, across thousands of random programs.

use global_sls::internals::*;
use global_sls::prelude::*;
use gsls_core::GlobalOpts;
use gsls_workloads::{random_program, win_random, RandomProgramOpts};
use proptest::prelude::*;

fn check_tabled_vs_wfm(store: &mut TermStore, program: &Program) {
    let gp = Grounder::ground(store, program).unwrap();
    let wfm = well_founded_model(&gp);
    let mut engine = TabledEngine::new(gp.clone());
    for a in gp.atom_ids() {
        assert_eq!(
            engine.truth(a),
            wfm.truth(a),
            "tabled ≠ WFM on {}",
            gp.display_atom(store, a)
        );
    }
}

fn check_tree_vs_wfm(store: &mut TermStore, program: &Program) {
    let gp = Grounder::ground(store, program).unwrap();
    let wfm = well_founded_model(&gp);
    for a in gp.atom_ids() {
        let atom = gp.atom(a).clone();
        let goal = Goal::new(vec![Literal::pos(atom.clone())]);
        let tree = GlobalTree::build(store, program, &goal, GlobalOpts::default());
        let expected = match wfm.truth(a) {
            Truth::True => Status::Successful,
            Truth::False => Status::Failed,
            Truth::Undefined => Status::Indeterminate,
        };
        assert_eq!(
            tree.status(),
            expected,
            "tree ≠ WFM on {}",
            atom.display(store)
        );
    }
}

#[test]
fn tabled_matches_wfm_on_many_random_programs() {
    for seed in 0..300u64 {
        let mut store = TermStore::new();
        let program = random_program(&mut store, RandomProgramOpts::default(), seed);
        check_tabled_vs_wfm(&mut store, &program);
    }
}

#[test]
fn tree_matches_wfm_on_random_programs() {
    // The explicit tree engine is heavier; fewer seeds, smaller programs.
    let opts = RandomProgramOpts {
        atoms: 8,
        clauses: 14,
        max_body: 3,
        neg_prob: 0.5,
    };
    for seed in 0..80u64 {
        let mut store = TermStore::new();
        let program = random_program(&mut store, opts, seed);
        check_tree_vs_wfm(&mut store, &program);
    }
}

#[test]
fn tabled_matches_wfm_on_random_games() {
    for seed in 0..40u64 {
        let mut store = TermStore::new();
        let program = win_random(&mut store, 30, 3, seed);
        check_tabled_vs_wfm(&mut store, &program);
    }
}

#[test]
fn dense_negation_heavy_programs() {
    let opts = RandomProgramOpts {
        atoms: 10,
        clauses: 40,
        max_body: 4,
        neg_prob: 0.8,
    };
    for seed in 1000..1100u64 {
        let mut store = TermStore::new();
        let program = random_program(&mut store, opts, seed);
        check_tabled_vs_wfm(&mut store, &program);
    }
}

#[test]
fn pure_positive_programs() {
    let opts = RandomProgramOpts {
        neg_prob: 0.0,
        ..RandomProgramOpts::default()
    };
    for seed in 0..50u64 {
        let mut store = TermStore::new();
        let program = random_program(&mut store, opts, seed);
        check_tabled_vs_wfm(&mut store, &program);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property: tabled engine ≡ bottom-up WFM, arbitrary shapes.
    #[test]
    fn prop_tabled_equals_wfm(
        seed in any::<u64>(),
        atoms in 2usize..15,
        clauses in 1usize..30,
        max_body in 0usize..4,
        neg_pct in 0u8..=10,
    ) {
        let opts = RandomProgramOpts {
            atoms,
            clauses,
            max_body,
            neg_prob: f64::from(neg_pct) / 10.0,
        };
        let mut store = TermStore::new();
        let program = random_program(&mut store, opts, seed);
        check_tabled_vs_wfm(&mut store, &program);
    }

    /// Property: the explicit global tree ≡ WFM on small programs.
    #[test]
    fn prop_tree_equals_wfm(
        seed in any::<u64>(),
        atoms in 2usize..8,
        clauses in 1usize..12,
    ) {
        let opts = RandomProgramOpts {
            atoms,
            clauses,
            max_body: 3,
            neg_prob: 0.5,
        };
        let mut store = TermStore::new();
        let program = random_program(&mut store, opts, seed);
        check_tree_vs_wfm(&mut store, &program);
    }
}
