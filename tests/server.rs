//! gsls-serve integration tests (PR 10).
//!
//! Covers the serving stack end to end:
//!
//! * wire-protocol robustness: fuzzed request/response round trips,
//!   truncation/bit-flip rejection (typed errors, never a panic), and
//!   the protocol version byte;
//! * the group-commit write path: concurrent committers are fsync'd in
//!   groups, each client acked individually, per-batch governance
//!   (an expired deadline interrupts exactly that client while the
//!   session keeps serving);
//! * ungraceful clients: disconnects mid-frame, half-written frames,
//!   and raw garbage never poison a session;
//! * a concurrent reader/writer storm whose final state must equal a
//!   sequential oracle session fed the same batches (run under
//!   `GSLS_THREADS=2` in check.sh);
//! * the `commit_group` / `Snapshot::prepare` core surfaces the server
//!   is built on.

use global_sls::prelude::*;
use global_sls::serve::{read_frame, write_frame, Server, ServerConfig};
use gsls_lang::{
    decode_request, decode_response, encode_request, encode_response, peek_request_kind, Request,
    Response, TruthTag, PROTO_VERSION,
};
use proptest::prelude::*;
use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Builds one ground fact atom over `store` from program text.
fn fact_atom(store: &mut TermStore, text: &str) -> Atom {
    parse_program(store, text).unwrap().clauses()[0]
        .head
        .clone()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gsls_server_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(data_dir: Option<PathBuf>) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        data_dir,
        idle_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    })
    .expect("server start")
}

// ---------------------------------------------------------------------
// Wire protocol robustness (satellite: fuzz round trips)
// ---------------------------------------------------------------------

/// A random but well-formed request, built over `store`.
fn random_request(rng: &mut TestRng, store: &mut TermStore) -> Request {
    match rng.below(6) {
        0 => Request::Ping,
        1 => Request::Open {
            session: format!("s{}", rng.below(100)),
        },
        2 => {
            let n = rng.below(4) + 1;
            let src: String = (0..n)
                .map(|i| match rng.below(3) {
                    0 => format!("e(a{i}, b{}). ", rng.below(5)),
                    1 => format!("p{i}(X) :- e(X, Y), ~q{}(Y). ", rng.below(3)),
                    _ => format!("q{}(c{}). ", rng.below(3), rng.below(5)),
                })
                .collect();
            let prog = parse_program(store, &src).unwrap();
            let rules = prog.clauses().to_vec();
            let asserts: Vec<Atom> = rules
                .iter()
                .filter(|c| c.body.is_empty())
                .map(|c| c.head.clone())
                .collect();
            Request::Commit {
                rules,
                asserts,
                retracts: Vec::new(),
                opts: GovernOpts {
                    deadline_ms: rng.bool().then(|| rng.below(10_000)),
                    fuel: rng.bool().then(|| rng.next_u64() % 1_000_000),
                    max_memory_bytes: rng.bool().then(|| rng.next_u64() % (1 << 30)),
                    max_clauses: rng.bool().then(|| rng.below(100_000)),
                },
            }
        }
        3 => Request::Query {
            goal: format!("?- p{}(X).", rng.below(5)),
            opts: GovernOpts::default(),
        },
        4 => Request::Metrics,
        _ => Request::Checkpoint,
    }
}

fn random_response(rng: &mut TestRng) -> Response {
    match rng.below(5) {
        0 => Response::Pong,
        1 => Response::Opened {
            session: format!("s{}", rng.below(10)),
            epoch: rng.next_u64(),
        },
        2 => Response::Answers {
            truth: match rng.below(3) {
                0 => TruthTag::True,
                1 => TruthTag::False,
                _ => TruthTag::Undefined,
            },
            answers: (0..rng.below(4)).map(|i| format!("X = a{i}")).collect(),
            undefined: (0..rng.below(2)).map(|i| format!("Y = u{i}")).collect(),
            interrupted: rng.bool(),
        },
        3 => Response::Text("# TYPE gsls_x counter\ngsls_x 1\n".into()),
        _ => Response::Error {
            kind: gsls_lang::ErrorKind::Rejected,
            message: "nope \u{1F989}".into(),
        },
    }
}

#[test]
fn proto_round_trips_under_fuzz() {
    let mut rng = TestRng::for_test("proto_round_trips");
    for _ in 0..200 {
        let mut store = TermStore::new();
        let req = random_request(&mut rng, &mut store);
        let mut bytes = Vec::new();
        encode_request(&store, &req, &mut bytes);
        assert_eq!(
            peek_request_kind(&bytes).unwrap(),
            match &req {
                Request::Ping => gsls_lang::RequestKind::Ping,
                Request::Open { .. } => gsls_lang::RequestKind::Open,
                Request::Commit { .. } => gsls_lang::RequestKind::Commit,
                Request::Query { .. } => gsls_lang::RequestKind::Query,
                Request::Metrics => gsls_lang::RequestKind::Metrics,
                Request::Events => gsls_lang::RequestKind::Events,
                Request::Checkpoint => gsls_lang::RequestKind::Checkpoint,
                Request::Shutdown => gsls_lang::RequestKind::Shutdown,
            }
        );
        // Decoding into a *fresh* store must reproduce the same
        // structure (display-compare clauses; ids differ by design).
        let mut store2 = TermStore::new();
        let decoded = decode_request(&mut store2, &bytes).unwrap();
        match (&req, &decoded) {
            (
                Request::Commit {
                    rules: r1,
                    asserts: a1,
                    opts: o1,
                    ..
                },
                Request::Commit {
                    rules: r2,
                    asserts: a2,
                    opts: o2,
                    ..
                },
            ) => {
                assert_eq!(o1, o2);
                assert_eq!(r1.len(), r2.len());
                assert_eq!(a1.len(), a2.len());
                for (c1, c2) in r1.iter().zip(r2) {
                    assert_eq!(c1.display(&store), c2.display(&store2));
                }
            }
            (a, b) => assert_eq!(format!("{a:?}"), format!("{b:?}")),
        }

        let resp = random_response(&mut rng);
        let mut rbytes = Vec::new();
        encode_response(&resp, &mut rbytes);
        assert_eq!(decode_response(&rbytes).unwrap(), resp);
    }
}

#[test]
fn proto_rejects_damage_without_panicking() {
    let mut rng = TestRng::for_test("proto_damage");
    for _ in 0..120 {
        let mut store = TermStore::new();
        let req = random_request(&mut rng, &mut store);
        let mut bytes = Vec::new();
        encode_request(&store, &req, &mut bytes);

        // Every truncation fails typed (or, for prefixes that happen
        // to end exactly at a message boundary, is impossible here
        // because decode rejects trailing loss as Truncated).
        for cut in 0..bytes.len() {
            let mut s = TermStore::new();
            assert!(
                decode_request(&mut s, &bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        // Random single-bit flips either decode to *something* (flips
        // in string bytes can be harmless) or fail typed — never panic.
        for _ in 0..16 {
            let mut dam = bytes.clone();
            let bit = rng.below(dam.len() as u64 * 8);
            dam[(bit / 8) as usize] ^= 1 << (bit % 8);
            let mut s = TermStore::new();
            let _ = decode_request(&mut s, &dam);
        }
        // Version byte: any other version is rejected outright.
        let mut wrong = bytes.clone();
        wrong[0] = PROTO_VERSION.wrapping_add(1 + rng.below(200) as u8);
        let mut s = TermStore::new();
        assert!(decode_request(&mut s, &wrong).is_err());
        assert!(peek_request_kind(&wrong).is_err());
    }
    // Responses too: truncations of a fuzzed response never panic.
    for _ in 0..60 {
        let resp = random_response(&mut rng);
        let mut bytes = Vec::new();
        encode_response(&resp, &mut bytes);
        for cut in 0..bytes.len() {
            assert!(decode_response(&bytes[..cut]).is_err());
        }
    }
}

#[test]
fn frames_round_trip_and_reject_damage() {
    let mut rng = TestRng::for_test("frame_fuzz");
    for _ in 0..100 {
        let n = rng.below(2000) as usize;
        let payload: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        assert_eq!(read_frame(&mut &buf[..]).unwrap(), payload);
        // A flip anywhere in the frame is caught (header: bad length /
        // crc mismatch / truncation; payload: crc mismatch).
        let bit = rng.below(buf.len() as u64 * 8);
        let mut dam = buf.clone();
        dam[(bit / 8) as usize] ^= 1 << (bit % 8);
        assert!(read_frame(&mut &dam[..]).is_err());
    }
}

// ---------------------------------------------------------------------
// Serving: group commit, governance, ungraceful clients
// ---------------------------------------------------------------------

#[test]
fn concurrent_commits_group_under_one_fsync() {
    let dir = temp_dir("group");
    let mut server = start(Some(dir.clone()));
    let addr = server.addr();

    let mut seed = Client::connect(addr).unwrap();
    seed.commit(
        "win(X) :- move(X, Y), ~win(Y).",
        "",
        "",
        GovernOpts::default(),
    )
    .unwrap();

    const WRITERS: usize = 8;
    const COMMITS: usize = 6;
    let handles: Vec<_> = (0..WRITERS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for j in 0..COMMITS {
                    let r = c
                        .commit(
                            "",
                            &format!("move(w{i}, t{i}_{j})."),
                            "",
                            GovernOpts::default(),
                        )
                        .unwrap();
                    assert!(r.epoch > 0);
                    assert_eq!(r.stats.facts_asserted, 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let scrape = seed.metrics().unwrap();
    let get = |name: &str| -> u64 {
        scrape
            .lines()
            .find(|l| !l.starts_with('#') && l.split_whitespace().next() == Some(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{name} missing from scrape"))
    };
    let records = get("gsls_wal_group_records");
    let syncs = get("gsls_wal_group_syncs");
    assert_eq!(records, (WRITERS * COMMITS + 1) as u64);
    assert!(
        syncs < records,
        "no amortization: {records} records took {syncs} fsync groups"
    );

    // Everything acked is visible.
    let q = seed
        .query("?- move(w0, X).", GovernOpts::default())
        .unwrap();
    assert_eq!(q.answers.len(), COMMITS);
    drop(seed);
    server.shutdown();

    // ... and durable: reopen the session directory directly.
    let mut session = Session::open(dir.join("default")).unwrap();
    let r = session.query("?- move(w7, X).").unwrap();
    assert_eq!(r.answers.len(), COMMITS);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn expired_deadline_interrupts_exactly_that_client() {
    let mut server = start(None);
    let addr = server.addr();
    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    a.commit(
        "t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).",
        "e(n0, n1). e(n1, n2).",
        "",
        GovernOpts::default(),
    )
    .unwrap();

    // An already-expired deadline: this client (and only this client)
    // gets Interrupted; its batch rolls back.
    let strict = GovernOpts {
        deadline_ms: Some(0),
        ..GovernOpts::default()
    };
    let chain: String = (2..40).map(|i| format!("e(n{i}, n{}). ", i + 1)).collect();
    let err = a.commit("", &chain, "", strict).unwrap_err();
    assert!(
        global_sls::serve::client::expect_interrupted(&err),
        "expected Interrupted, got {err}"
    );

    // The other client's concurrent work is unaffected, before and after.
    let r = b
        .commit("", "e(n1, m1).", "", GovernOpts::default())
        .unwrap();
    assert_eq!(r.stats.facts_asserted, 1);
    let q = b.query("?- t(n0, m1).", GovernOpts::default()).unwrap();
    assert_eq!(q.truth, "true");
    // The rolled-back batch is really gone.
    let q = b.query("?- e(n2, n3).", GovernOpts::default()).unwrap();
    assert_eq!(q.truth, "false");
    server.shutdown();
}

#[test]
fn ungraceful_clients_never_poison_the_session() {
    let mut server = start(None);
    let addr = server.addr();
    let mut good = Client::connect(addr).unwrap();
    good.commit("", "f(a).", "", GovernOpts::default()).unwrap();

    // 1. Disconnect with a half-written frame: claim 100 bytes, send 3.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&100u32.to_le_bytes()).unwrap();
        s.write_all(&0u32.to_le_bytes()).unwrap();
        s.write_all(&[1, 2, 3]).unwrap();
    } // dropped mid-frame

    // 2. A valid frame whose payload is garbage.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        write_frame(&mut s, &[0xde, 0xad, 0xbe, 0xef]).unwrap();
        let resp = read_frame(&mut s).unwrap();
        match decode_response(&resp).unwrap() {
            Response::Error { kind, .. } => assert_eq!(kind, gsls_lang::ErrorKind::Protocol),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    // 3. A frame with a corrupted CRC gets a typed protocol error.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        let mut frame = Vec::new();
        write_frame(&mut frame, b"not a request").unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        s.write_all(&frame).unwrap();
        let resp = read_frame(&mut s).unwrap();
        assert!(matches!(
            decode_response(&resp).unwrap(),
            Response::Error { .. }
        ));
    }

    // 4. Disconnect immediately after queuing a commit: the commit
    //    still applies (fsync-before-ack, nobody to ack).
    {
        let mut s = TcpStream::connect(addr).unwrap();
        let mut store = TermStore::new();
        let prog = parse_program(&mut store, "f(ghost).").unwrap();
        let req = Request::Commit {
            rules: Vec::new(),
            asserts: vec![prog.clauses()[0].head.clone()],
            retracts: Vec::new(),
            opts: GovernOpts::default(),
        };
        let mut bytes = Vec::new();
        encode_request(&store, &req, &mut bytes);
        write_frame(&mut s, &bytes).unwrap();
        s.flush().unwrap();
    } // dropped without reading the reply

    // The session is alive and serving; the ghost commit landed.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let q = good.query("?- f(ghost).", GovernOpts::default()).unwrap();
        if q.truth == "true" {
            break;
        }
        assert!(Instant::now() < deadline, "ghost commit never applied");
        std::thread::sleep(Duration::from_millis(10));
    }
    let r = good.commit("", "f(b).", "", GovernOpts::default()).unwrap();
    assert_eq!(r.stats.facts_asserted, 1);
    server.shutdown();
}

#[test]
fn storm_matches_sequential_oracle() {
    // Disjoint fact batches from concurrent writers commute, so the
    // final served state must equal one session fed every batch
    // sequentially — while readers hammer snapshots throughout.
    let mut server = start(None);
    let addr = server.addr();
    let mut seed = Client::connect(addr).unwrap();
    const RULES: &str = "reach(X, Y) :- e(X, Y). reach(X, Z) :- e(X, Y), reach(Y, Z). \
                         odd(X) :- e(X, Y), ~odd(Y).";
    seed.commit(RULES, "", "", GovernOpts::default()).unwrap();

    const WRITERS: usize = 4;
    const COMMITS: usize = 8;
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut n = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let q = c
                        .query("?- reach(v0_0, X).", GovernOpts::default())
                        .unwrap();
                    // Monotone workload: answers only grow.
                    assert!(q.truth == "true" || q.truth == "false");
                    n += 1;
                }
                n
            })
        })
        .collect();
    let writers: Vec<_> = (0..WRITERS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for j in 0..COMMITS {
                    c.commit(
                        "",
                        &format!("e(v{i}_{j}, v{i}_{}).", j + 1),
                        "",
                        GovernOpts::default(),
                    )
                    .unwrap();
                }
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in readers {
        assert!(h.join().unwrap() > 0, "reader made no progress");
    }

    // Sequential oracle: same rules, same batches, one session.
    let mut oracle = Session::from_source(RULES).unwrap();
    for i in 0..WRITERS {
        for j in 0..COMMITS {
            oracle
                .assert_facts(&format!("e(v{i}_{j}, v{i}_{}).", j + 1))
                .unwrap();
        }
    }
    for i in 0..WRITERS {
        let goal = format!("?- reach(v{i}_0, v{i}_{COMMITS}).");
        assert_eq!(oracle.truth(&goal).unwrap(), Truth::True);
        let served = seed.query(&goal, GovernOpts::default()).unwrap();
        assert_eq!(served.truth, "true", "{goal}");
        let goal = format!("?- odd(v{i}_0).");
        let want = match oracle.truth(&goal).unwrap() {
            Truth::True => "true",
            Truth::False => "false",
            Truth::Undefined => "undefined",
        };
        let served = seed.query(&goal, GovernOpts::default()).unwrap();
        assert_eq!(served.truth, want, "{goal}");
    }
    server.shutdown();
}

#[test]
fn slow_peer_trickling_a_frame_is_never_desynced_or_reaped() {
    // The server polls its sockets every ~100ms; a peer that pauses
    // longer than that *inside* a frame must resume exactly where it
    // stopped (no desync) and must not be idle-reaped while the bytes
    // are still trickling in.
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: None,
        idle_timeout: Duration::from_millis(600),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let mut s = TcpStream::connect(addr).unwrap();
    let mut store = TermStore::new();
    let req = Request::Commit {
        rules: Vec::new(),
        asserts: vec![fact_atom(&mut store, "slowpoke(arrived).")],
        retracts: Vec::new(),
        opts: GovernOpts::default(),
    };
    let mut payload = Vec::new();
    encode_request(&store, &req, &mut payload);
    let mut frame = Vec::new();
    write_frame(&mut frame, &payload).unwrap();

    // A few bytes every 150ms: every gap straddles the server's poll
    // timeout, and the whole frame takes several idle-timeouts to land.
    let start = Instant::now();
    for chunk in frame.chunks(4) {
        s.write_all(chunk).unwrap();
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(150));
    }
    assert!(
        start.elapsed() > Duration::from_millis(600),
        "trickle too fast to exercise the idle clock"
    );
    let resp = read_frame(&mut s).unwrap();
    match decode_response(&resp).unwrap() {
        Response::Committed { stats, .. } => assert_eq!(stats.facts_asserted, 1),
        other => panic!("expected Committed, got {other:?}"),
    }
    // The stream is still framed: a normal request on the same
    // connection round-trips.
    let mut payload = Vec::new();
    encode_request(&store, &Request::Ping, &mut payload);
    write_frame(&mut s, &payload).unwrap();
    s.flush().unwrap();
    let resp = read_frame(&mut s).unwrap();
    assert_eq!(decode_response(&resp).unwrap(), Response::Pong);
    server.shutdown();
}

#[test]
fn rejected_commits_answer_typed_and_leave_the_session_serving() {
    // Shape-invalid commits are bounced off a scratch decode before
    // anything reaches the session's term arena.
    let mut server = start(None);
    let addr = server.addr();
    let mut good = Client::connect(addr).unwrap();
    good.commit("", "f(a).", "", GovernOpts::default()).unwrap();

    let mut s = TcpStream::connect(addr).unwrap();
    let mut send = |store: &TermStore, req: &Request| -> Response {
        let mut payload = Vec::new();
        encode_request(store, req, &mut payload);
        write_frame(&mut s, &payload).unwrap();
        s.flush().unwrap();
        decode_response(&read_frame(&mut s).unwrap()).unwrap()
    };

    // A non-ground assert (head of a rule with a variable).
    let mut store = TermStore::new();
    let open_atom = parse_program(&mut store, "p(X) :- f(X).")
        .unwrap()
        .clauses()[0]
        .head
        .clone();
    let resp = send(
        &store,
        &Request::Commit {
            rules: Vec::new(),
            asserts: vec![open_atom],
            retracts: Vec::new(),
            opts: GovernOpts::default(),
        },
    );
    match resp {
        Response::Error { kind, .. } => assert_eq!(kind, gsls_lang::ErrorKind::Rejected),
        other => panic!("expected Rejected, got {other:?}"),
    }

    // A fact with a proper function symbol.
    let mut store = TermStore::new();
    let nested = fact_atom(&mut store, "g(h(a)).");
    let resp = send(
        &store,
        &Request::Commit {
            rules: Vec::new(),
            asserts: vec![nested],
            retracts: Vec::new(),
            opts: GovernOpts::default(),
        },
    );
    match resp {
        Response::Error { kind, .. } => assert_eq!(kind, gsls_lang::ErrorKind::Rejected),
        other => panic!("expected Rejected, got {other:?}"),
    }

    // The session shrugged both off.
    let r = good.commit("", "f(b).", "", GovernOpts::default()).unwrap();
    assert_eq!(r.stats.facts_asserted, 1);
    let q = good.query("?- f(a).", GovernOpts::default()).unwrap();
    assert_eq!(q.truth, "true");
    server.shutdown();
}

#[test]
fn translate_into_rebuilds_identical_structure() {
    // The writer-side scratch-store path: decode into a throwaway
    // store, translate into the long-lived one, and the batch must be
    // structurally identical (displays match; ids need not).
    let mut scratch = TermStore::new();
    let prog = parse_program(
        &mut scratch,
        "win(X) :- move(X, Y), ~win(Y). move(a, b). move(b, c). drawn(V) :- cycle(V, V).",
    )
    .unwrap();
    let mut session_store = TermStore::new();
    session_store.constant("preexisting");
    let before = session_store.len();
    let map = scratch.translate_into(&mut session_store);
    assert_eq!(map.len(), scratch.len());
    for c in prog.clauses() {
        let t = c.translate(&scratch, &mut session_store, &map);
        assert_eq!(c.display(&scratch), t.display(&session_store));
    }
    // Translating the same store again is free: everything hash-conses
    // onto the first copy except variables, which stay scoped per call.
    let after_once = session_store.len();
    assert!(after_once > before);
    let map2 = scratch.translate_into(&mut session_store);
    let grew = session_store.len() - after_once;
    assert!(
        grew <= scratch.var_count(),
        "second translation grew {grew} terms (only fresh vars expected)"
    );
    // Function-free / groundness predicates survive translation.
    for (c, want) in prog
        .clauses()
        .iter()
        .map(|c| (c, c.is_function_free(&scratch)))
    {
        let t = c.translate(&scratch, &mut session_store, &map2);
        assert_eq!(t.is_function_free(&session_store), want);
    }
}

#[test]
fn covering_fsync_failure_poisons_instead_of_acking() {
    // Storage that crashes after a byte budget: the first batch of the
    // group journals fine, the second batch's append blows the budget,
    // and the covering fsync then fails on the crashed file. The
    // session must refuse to pretend — Err out of commit_group and
    // poison itself (its in-memory state is no longer provably the
    // WAL's), rather than letting un-acked writes linger as committed.
    let dir = temp_dir("sync_fail");
    let mut budget = None;
    for attempt in 0..2 {
        let plan = gsls_durable::FaultPlan {
            crash_after_bytes: budget,
            ..gsls_durable::FaultPlan::default()
        };
        let mut sess = Session::open_with(
            &dir,
            GrounderOpts::default(),
            DurableOpts {
                storage: StorageKind::Faulty(plan),
                ..DurableOpts::default()
            },
        )
        .unwrap();
        let small = UpdateBatch {
            asserts: vec![fact_atom(sess.store_mut(), "tick(t0).")],
            ..UpdateBatch::default()
        };
        let big_src: String = (0..64).map(|i| format!("bulk(b{i}). ")).collect();
        let big_atoms: Vec<Atom> = parse_program(sess.store_mut(), &big_src)
            .unwrap()
            .clauses()
            .iter()
            .map(|c| c.head.clone())
            .collect();
        let big = UpdateBatch {
            asserts: big_atoms,
            ..UpdateBatch::default()
        };
        let outcome =
            sess.commit_group(vec![(small, CommitOpts::none()), (big, CommitOpts::none())]);
        if attempt == 0 {
            // Calibration pass on healthy storage: measure how many
            // bytes one full group appends, then budget the rerun so
            // the small batch fits and the big one crashes the file.
            outcome.expect("calibration group must commit");
            // Sum every WAL generation: the active gen is an
            // implementation detail we should not guess at.
            let bytes: u64 = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| {
                    let name = e.file_name();
                    let name = name.to_string_lossy();
                    name.starts_with("wal-") && name.ends_with(".log")
                })
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum();
            assert!(bytes > 0, "calibration wrote nothing");
            budget = Some(bytes / 2);
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            continue;
        }
        let err = outcome.expect_err("group must fail once the WAL crashes");
        assert!(
            matches!(err, SessionError::Durable(_)),
            "expected a durability error, got {err:?}"
        );
        assert!(sess.is_poisoned(), "fsync failure must poison the session");
        // Further writes are refused until recovery...
        let a = fact_atom(sess.store_mut(), "tick(t1).");
        let late = UpdateBatch {
            asserts: vec![a],
            ..UpdateBatch::default()
        };
        assert!(matches!(
            sess.commit_group(vec![(late, CommitOpts::none())]),
            Err(SessionError::Poisoned)
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn open_binds_named_sessions_and_busy_cap_is_typed() {
    let dir = temp_dir("named");
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: Some(dir.clone()),
        max_conns: 2,
        idle_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let mut a = Client::connect(addr).unwrap();
    assert_eq!(a.open("alpha").unwrap(), 0);
    a.commit("", "x(1).", "", GovernOpts::default()).unwrap();
    let mut b = Client::connect(addr).unwrap();
    b.open("beta").unwrap();
    // beta does not see alpha's fact.
    let q = b.query("?- x(1).", GovernOpts::default()).unwrap();
    assert_eq!(q.truth, "false");
    // Invalid names are rejected, not used as paths.
    assert!(a.open("../escape").is_err());

    // Third connection is over the cap: one typed Busy reply.
    let mut c = TcpStream::connect(addr).unwrap();
    let payload = read_frame(&mut c).unwrap();
    match decode_response(&payload).unwrap() {
        Response::Error { kind, .. } => assert_eq!(kind, gsls_lang::ErrorKind::Busy),
        other => panic!("expected Busy, got {other:?}"),
    }
    drop(c);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// The core surfaces the server is built on
// ---------------------------------------------------------------------

#[test]
fn commit_group_applies_per_batch_and_recovers() {
    let dir = temp_dir("commit_group");
    {
        let mut sess = Session::open(&dir).unwrap();
        let fact = |s: &mut Session, text: &str| -> Atom {
            let p = parse_program(s.store_mut(), text).unwrap();
            p.clauses()[0].head.clone()
        };
        // Parse batch contents straight into the session's own store —
        // the same thing the server's writer thread does when decoding.
        let rules: Vec<Clause> = parse_program(
            sess.store_mut(),
            "e(a, b). e(b, c). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).",
        )
        .unwrap()
        .clauses()
        .to_vec();
        let good1 = UpdateBatch {
            rules,
            asserts: Vec::new(),
            retracts: Vec::new(),
        };
        let a1 = fact(&mut sess, "e(c, d).");
        let good2 = UpdateBatch {
            asserts: vec![a1],
            ..UpdateBatch::default()
        };
        // Middle batch trips an already-expired deadline.
        let a2 = fact(&mut sess, "e(d, e).");
        let doomed = UpdateBatch {
            asserts: vec![a2],
            ..UpdateBatch::default()
        };
        let expired = CommitOpts {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..CommitOpts::default()
        };
        let results = sess
            .commit_group(vec![
                (good1, CommitOpts::none()),
                (doomed, expired),
                (good2, CommitOpts::none()),
            ])
            .unwrap();
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(SessionError::Interrupted { .. })));
        assert!(results[2].is_ok());
        assert!(!sess.is_poisoned());
        assert_eq!(sess.epoch(), 2, "two applied batches");
        assert_eq!(sess.truth("?- t(a, d).").unwrap(), Truth::True);
        assert_eq!(sess.truth("?- e(d, e).").unwrap(), Truth::False);
    }
    // The group's covering fsync made both good batches durable; the
    // doomed one was truncated off the tail and must not resurrect.
    let mut sess = Session::open(&dir).unwrap();
    assert_eq!(sess.epoch(), 2);
    assert_eq!(sess.truth("?- t(a, d).").unwrap(), Truth::True);
    assert_eq!(sess.truth("?- e(d, e).").unwrap(), Truth::False);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_prepare_runs_read_only_queries() {
    let mut sess =
        Session::from_source("move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).")
            .unwrap();
    let snap = sess.snapshot();
    // Store size must not change however many queries compile.
    let terms_before = snap.store().len();
    let q = snap.prepare("?- win(X).").unwrap();
    let answers: Vec<Answer> = q.execute(&snap).unwrap().collect();
    assert_eq!(answers.len(), 1);
    assert_eq!(q.render_answer(&snap, &answers[0]), "X = b");
    // Constants the snapshot has never seen: atom false, negation true.
    let q2 = snap.prepare("?- win(zebra).").unwrap();
    assert_eq!(q2.execute(&snap).unwrap().count(), 0);
    let q3 = snap.prepare("?- ~win(zebra).").unwrap();
    assert_eq!(q3.execute(&snap).unwrap().count(), 1);
    assert_eq!(snap.store().len(), terms_before, "prepare interned terms");

    // Many threads, one snapshot, concurrent prepare+execute.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let snap = snap.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let q = snap.prepare("?- move(X, Y), ~win(Y).").unwrap();
                    // (b, a) and (b, c): both targets lose.
                    assert_eq!(q.execute(&snap).unwrap().count(), 2);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // The plan survives the session moving on (append-only arena)...
    sess.assert_facts("move(c, a).").unwrap();
    let snap2 = sess.snapshot();
    let late: Vec<Answer> = q.execute(&snap2).unwrap().collect();
    // ...one big cycle now: every position is an undefined draw.
    assert_eq!(late.len(), 3);
    assert!(late.iter().all(|a| a.truth == Truth::Undefined));
}
