//! Durability and recovery properties (PR 6).
//!
//! The central invariant: **reopening a durable session is equivalent
//! to rebuilding from the durable prefix of commits**. A crash at any
//! WAL record boundary — or anywhere inside a record — must recover
//! exactly the commits whose records are intact on disk: no more
//! (torn tails never replay), no less (fsync'd records survive).
//!
//! The harness runs a scripted random walk of transactional commits on
//! a durable session, then:
//!
//! * `crash_at_every_record_boundary_*` truncates a copy of the WAL at
//!   every record boundary (and at mid-record tears) and asserts the
//!   reopened session's model equals a from-scratch in-memory session
//!   replaying exactly that prefix of commits — live and snapshot
//!   reads both;
//! * `fault_injected_crash_recovers_a_commit_prefix` reruns the walk
//!   on [`FaultyFile`] storage (killed writes, dropped fsyncs, torn
//!   tails — seed swept via `GSLS_FAULT_SEED` in check.sh) and asserts
//!   the post-"reboot" state is the prefix named by the recovered
//!   epoch;
//! * the remaining tests pin checkpoint rotation/fallback and the
//!   failed-commit recovery semantics (rejected and failed batches
//!   degrade to rolled-back transactions; rollback un-poisons).

use global_sls::prelude::*;
use gsls_durable::{scan_dir, wal_path, FaultPlan, FileStorage, Wal};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------
// Walk machinery (mirrors tests/incremental.rs, durable flavor).
// ---------------------------------------------------------------------

/// Minimal deterministic PRNG (splitmix-style; see tests/incremental.rs).
struct Walk(u64);

impl Walk {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 > 1.0 - p
    }
}

const WALK_BASE: &str = "
    t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).
    w(X) :- e(X, Y), ~w(Y).
    p(X) :- f(X), ~g(X).
    f(c0).
";

const WALK_RULES: &[&str] = &[
    "q(X) :- t(X, X).",
    "s(X) :- f(X), ~w(X).",
    "g(X) :- h(X, X).",
    "r2(X, Y) :- e(X, Y), ~e(Y, X).",
    "u(X) :- ~f(X).",
];

/// One update inside a commit, replayable on any session.
#[derive(Debug, Clone)]
enum Op {
    Rules(String),
    Assert(String),
    Retract(String),
}

fn walk_fact(rng: &mut Walk, n_consts: usize) -> String {
    let c = |rng: &mut Walk| format!("c{}", rng.below(n_consts));
    match rng.below(4) {
        0 => format!("e({}, {}).", c(rng), c(rng)),
        1 => format!("f({}).", c(rng)),
        2 => format!("g({}).", c(rng)),
        _ => format!("h({}, {}).", c(rng), c(rng)),
    }
}

/// Scripts `commits` random transactional batches. Every batch is an
/// explicit begin/commit so one batch == one WAL record == one epoch.
fn script_walk(seed: u64, commits: usize) -> Vec<Vec<Op>> {
    let mut rng = Walk(seed);
    let mut rules_left: Vec<&str> = WALK_RULES.to_vec();
    let mut active: Vec<String> = vec!["f(c0).".to_owned()];
    let mut batches = Vec::with_capacity(commits);
    for step in 0..commits {
        let n_consts = 3 + step.min(3);
        let mut ops = Vec::new();
        for _ in 0..1 + rng.below(3) {
            match rng.below(5) {
                0 | 1 | 3 => {
                    let f = walk_fact(&mut rng, n_consts);
                    if !active.contains(&f) {
                        active.push(f.clone());
                    }
                    ops.push(Op::Assert(f));
                }
                2 => {
                    let f = if !active.is_empty() && rng.chance(0.8) {
                        active[rng.below(active.len())].clone()
                    } else {
                        walk_fact(&mut rng, n_consts)
                    };
                    active.retain(|g| g != &f);
                    ops.push(Op::Retract(f));
                }
                _ => {
                    if !rules_left.is_empty() {
                        let r = rules_left.remove(rng.below(rules_left.len()));
                        ops.push(Op::Rules(r.to_owned()));
                    }
                }
            }
        }
        batches.push(ops);
    }
    batches
}

/// Replays one batch as a single transaction.
fn apply_batch(session: &mut Session, ops: &[Op]) -> Result<CommitStats, SessionError> {
    session.begin()?;
    for op in ops {
        let r = match op {
            Op::Rules(src) => session.add_rules(src),
            Op::Assert(src) => session.assert_facts(src),
            Op::Retract(src) => session.retract_facts(src),
        };
        if let Err(e) = r {
            session.rollback();
            return Err(e);
        }
    }
    session.commit()
}

/// The in-memory oracle: a fresh session with the first `n` batches.
fn oracle_with_prefix(batches: &[Vec<Op>], n: usize) -> Session {
    let mut s = Session::from_source(WALK_BASE).expect("base grounds");
    // The walk deliberately commits lint-deniable rules (u/1 flounders
    // without active-domain enumeration); durability is about journaling,
    // not the gate, so the oracle matches the walk's permissive config.
    s.set_lint_config(LintConfig::permissive());
    for ops in &batches[..n] {
        apply_batch(&mut s, ops).expect("oracle batch commits");
    }
    s
}

/// The model as displayable fact sets (true, undefined). False atoms
/// are omitted: which false atoms exist depends on interning history,
/// but the true/undefined sets are the semantics.
fn fingerprint(s: &Session) -> (BTreeSet<String>, BTreeSet<String>) {
    let gp = s.ground_program();
    let mut t = BTreeSet::new();
    let mut u = BTreeSet::new();
    for id in gp.atom_ids() {
        match s.model().truth(id) {
            Truth::True => {
                t.insert(gp.display_atom(s.store(), id));
            }
            Truth::Undefined => {
                u.insert(gp.display_atom(s.store(), id));
            }
            Truth::False => {}
        }
    }
    (t, u)
}

/// Asserts `got` (a reopened durable session) matches `want` (the
/// oracle) — model fingerprints, per-atom live queries, and snapshot
/// reads must all agree.
fn assert_sessions_match(ctx: &str, got: &mut Session, want: &mut Session) {
    let want_fp = fingerprint(want);
    let got_fp = fingerprint(got);
    assert_eq!(got_fp, want_fp, "{ctx}: model fingerprints diverge");

    // Live ground queries through the reopened session agree with the
    // oracle on every oracle atom (including false ones).
    let mut checks: Vec<(String, Truth)> = Vec::new();
    {
        let gp = want.ground_program();
        for id in gp.atom_ids() {
            checks.push((gp.display_atom(want.store(), id), want.model().truth(id)));
        }
    }
    for (name, truth) in &checks {
        let live = got.truth(&format!("?- {name}.")).expect("ground query");
        assert_eq!(live, *truth, "{ctx}: live read of {name} diverges");
    }

    // Snapshot reads see the same verdicts.
    let parsed: Vec<Atom> = {
        let mut s = got.store().clone();
        checks
            .iter()
            .map(|(name, _)| {
                parse_goal(&mut s, &format!("?- {name}."))
                    .expect("atom parses")
                    .literals()[0]
                    .atom
                    .clone()
            })
            .collect()
    };
    let snapshot = got.snapshot();
    for (i, (name, want_truth)) in checks.iter().enumerate() {
        assert_eq!(
            snapshot.truth_of_atom(&parsed[i]),
            *want_truth,
            "{ctx}: snapshot read of {name} diverges"
        );
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gsls_durability_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Durable options that never auto-checkpoint (single WAL generation —
/// the boundary sweep needs all records in one file).
fn no_auto_checkpoint() -> DurableOpts {
    DurableOpts {
        checkpoint_records: usize::MAX,
        checkpoint_bytes: u64::MAX,
        ..DurableOpts::default()
    }
}

fn open_base(dir: &Path, dopts: DurableOpts) -> Session {
    let mut store = TermStore::new();
    let program = parse_program(&mut store, WALK_BASE).expect("base parses");
    let mut s = Session::open_with_parts(dir, store, program, GrounderOpts::default(), dopts)
        .expect("durable open");
    // Walk batches include rules the default lint gate denies.
    s.set_lint_config(LintConfig::permissive());
    s
}

/// Copies the (flat) durable directory.
fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy file");
    }
}

// ---------------------------------------------------------------------
// The tentpole property: crash at every record boundary.
// ---------------------------------------------------------------------

/// Runs the walk durably, then replays a crash at every WAL record
/// boundary (and a mid-record tear after each) and asserts reopen ≡
/// from-scratch rebuild of exactly that commit prefix.
fn crash_boundary_sweep(seed: u64, commits: usize) {
    let dir = temp_dir(&format!("boundary_{seed}"));
    let batches = script_walk(seed, commits);
    {
        let mut session = open_base(&dir, no_auto_checkpoint());
        for ops in &batches {
            apply_batch(&mut session, ops).expect("durable batch commits");
        }
        assert_eq!(session.epoch(), commits as u64);
    }

    // Locate the active WAL and its record boundaries.
    let gens = scan_dir(&dir).expect("scan dir");
    let active = *gens.wals.iter().max().expect("a wal exists");
    let wal_file = wal_path(&dir, active);
    let scan = {
        let storage = Box::new(FileStorage::open(&wal_file).expect("open wal"));
        Wal::open(storage).expect("scan wal").1
    };
    assert_eq!(
        scan.records.len(),
        commits,
        "one WAL record per transactional commit"
    );
    let clean = std::fs::read(&wal_file).expect("read wal");

    let crash_dir = temp_dir(&format!("boundary_{seed}_crash"));
    let mut boundaries: Vec<(usize, u64)> = vec![(0, 0)];
    boundaries.extend(
        scan.offsets
            .iter()
            .copied()
            .enumerate()
            .map(|(i, o)| (i + 1, o)),
    );
    for (prefix, offset) in boundaries {
        // Crash cuts: exactly at the boundary, and (when a next record
        // exists) tears into its header and into its payload.
        let mut cuts = vec![offset];
        if (offset as usize) < clean.len() {
            let next_end = scan
                .offsets
                .get(prefix)
                .copied()
                .unwrap_or(clean.len() as u64);
            cuts.push(offset + 3); // torn header
            cuts.push(offset + (next_end - offset) / 2); // torn payload
            cuts.push(next_end.saturating_sub(1)); // one byte short
        }
        cuts.retain(|&c| c <= clean.len() as u64);
        cuts.dedup();
        for cut in cuts {
            copy_dir(&dir, &crash_dir);
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(crash_dir.join(wal_file.file_name().unwrap()))
                .expect("open wal copy");
            f.set_len(cut).expect("truncate wal copy");
            drop(f);

            let mut reopened =
                Session::open_with(&crash_dir, GrounderOpts::default(), no_auto_checkpoint())
                    .expect("reopen after crash");
            assert_eq!(
                reopened.epoch(),
                prefix as u64,
                "seed {seed}: cut {cut} must recover {prefix} commits"
            );
            let mut oracle = oracle_with_prefix(&batches, prefix);
            assert_sessions_match(
                &format!("seed {seed} prefix {prefix} cut {cut}"),
                &mut reopened,
                &mut oracle,
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

#[test]
fn crash_at_every_record_boundary_fixed_seeds() {
    for seed in [11, 42] {
        crash_boundary_sweep(seed, 8);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The acceptance property over random walks.
    #[test]
    fn crash_at_every_record_boundary_random(seed in any::<u64>()) {
        crash_boundary_sweep(seed, 6);
    }
}

// ---------------------------------------------------------------------
// Fault injection: the crash happens *inside* the session.
// ---------------------------------------------------------------------

/// Runs the walk on fault-injecting storage until the injected crash
/// kills a commit, "reboots" onto real storage, and asserts the
/// recovered state is the exact commit prefix named by the recovered
/// epoch (with all fully-fsync'd commits present).
fn fault_injection_run(seed: u64) {
    let dir = temp_dir(&format!("fault_{seed}"));
    let mut rng = Walk(seed ^ 0xfau64);
    let plan = FaultPlan {
        // Somewhere inside the walk's WAL traffic (records are tens of
        // bytes; the full walk writes a few hundred).
        crash_after_bytes: Some(64 + rng.below(700) as u64),
        // Sometimes drop an early fsync (the lying-disk case).
        drop_syncs: if rng.chance(0.5) {
            vec![rng.below(4) as u64]
        } else {
            Vec::new()
        },
        torn_tail_bytes: rng.below(24) as u64,
    };
    let commits = 10;
    let batches = script_walk(seed, commits);

    let dopts = DurableOpts {
        storage: StorageKind::Faulty(plan),
        ..no_auto_checkpoint()
    };
    let mut survived = 0usize;
    let mut crashed = false;
    {
        let mut session = open_base(&dir, dopts);
        for ops in &batches {
            match apply_batch(&mut session, ops) {
                Ok(_) => survived += 1,
                Err(SessionError::Durable(_)) => {
                    crashed = true;
                    break;
                }
                Err(e) => panic!("unexpected walk error: {e}"),
            }
        }
        // The crash must not corrupt the in-memory session: it still
        // serves its pre-crash state (the failed commit rolled back).
        assert_eq!(session.epoch(), survived as u64);
        assert!(!session.is_poisoned());
    }

    // "Reboot": reopen the directory on real storage. The recovered
    // epoch names how many commits actually reached the disk.
    let mut reopened = Session::open_with(&dir, GrounderOpts::default(), no_auto_checkpoint())
        .expect("reopen after injected crash");
    let recovered = reopened.epoch() as usize;
    assert!(
        recovered <= survived,
        "seed {seed}: disk cannot hold commits that never happened"
    );
    if crashed && plan_all_syncs_kept(seed) {
        // With every fsync honored, every acknowledged commit is on
        // disk: the crash can only have eaten the in-flight one.
        assert_eq!(
            recovered, survived,
            "seed {seed}: fsync'd commits must survive the crash"
        );
    }
    let mut oracle = oracle_with_prefix(&batches, recovered);
    assert_sessions_match(&format!("fault seed {seed}"), &mut reopened, &mut oracle);

    // Recovery is stable: the reopened session keeps committing.
    reopened
        .assert_facts("f(c9).")
        .expect("post-recovery commit");
    assert_eq!(reopened.truth("?- f(c9).").unwrap(), Truth::True);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Whether `fault_injection_run(seed)` built a plan with no dropped
/// fsyncs (recomputes the same PRNG draws).
fn plan_all_syncs_kept(seed: u64) -> bool {
    let mut rng = Walk(seed ^ 0xfau64);
    let _ = rng.below(700);
    !rng.chance(0.5)
}

/// Seed sweep, overridable from the environment: check.sh runs this
/// with `GSLS_FAULT_SEED=<n>` to widen coverage.
#[test]
fn fault_injected_crash_recovers_a_commit_prefix() {
    let seeds: Vec<u64> = match std::env::var("GSLS_FAULT_SEED") {
        Ok(s) => {
            let base: u64 = s.parse().expect("GSLS_FAULT_SEED must be an integer");
            (0..4)
                .map(|i| base.wrapping_mul(97).wrapping_add(i))
                .collect()
        }
        Err(_) => vec![1, 2, 5, 8],
    };
    for seed in seeds {
        fault_injection_run(seed);
    }
}

// ---------------------------------------------------------------------
// Checkpoint/restore.
// ---------------------------------------------------------------------

/// State (including retractions) survives checkpoint + reopen, and the
/// WAL rotates: records before the checkpoint are never replayed.
#[test]
fn checkpoint_restores_state_and_rotates_wal() {
    let dir = temp_dir("checkpoint");
    {
        let mut s = open_base(&dir, no_auto_checkpoint());
        s.assert_facts("e(c0, c1). e(c1, c0). g(c0).").unwrap();
        s.retract_facts("g(c0).").unwrap();
        s.checkpoint().expect("explicit checkpoint");
        s.assert_facts("f(c1).").unwrap(); // post-checkpoint WAL tail
    }
    let gens = scan_dir(&dir).unwrap();
    assert!(gens.checkpoints.len() >= 2, "initial + explicit checkpoint");

    let mut reopened = Session::open(&dir).expect("reopen");
    assert_eq!(
        reopened.truth("?- p(c0).").unwrap(),
        Truth::True,
        "g(c0) retracted"
    );
    assert_eq!(reopened.truth("?- g(c0).").unwrap(), Truth::False);
    assert_eq!(
        reopened.truth("?- f(c1).").unwrap(),
        Truth::True,
        "WAL tail replayed"
    );
    assert_eq!(reopened.truth("?- t(c0, c0).").unwrap(), Truth::True);
    assert_eq!(reopened.truth("?- w(c0).").unwrap(), Truth::Undefined);

    // Retraction still reversible after restore.
    reopened.assert_facts("g(c0).").unwrap();
    assert_eq!(reopened.truth("?- p(c0).").unwrap(), Truth::False);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Auto-checkpointing (record-count threshold) kicks in mid-walk and
/// retention keeps two generations; reopen still equals the oracle.
#[test]
fn auto_checkpoint_with_retention_recovers() {
    let dir = temp_dir("auto_ckpt");
    let batches = script_walk(77, 12);
    let dopts = DurableOpts {
        checkpoint_records: 3,
        ..DurableOpts::default()
    };
    {
        let mut s = open_base(&dir, dopts.clone());
        for ops in &batches {
            apply_batch(&mut s, ops).expect("batch commits");
        }
    }
    let gens = scan_dir(&dir).unwrap();
    assert!(
        gens.checkpoints.len() <= 2,
        "retention keeps at most two generations: {:?}",
        gens.checkpoints
    );
    let mut reopened = Session::open_with(&dir, GrounderOpts::default(), dopts).unwrap();
    assert_eq!(reopened.epoch(), 12);
    let mut oracle = oracle_with_prefix(&batches, 12);
    assert_sessions_match("auto checkpoint", &mut reopened, &mut oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt newest checkpoint falls back to the previous generation
/// and replays forward through both WALs — state identical.
#[test]
fn corrupt_newest_checkpoint_falls_back_one_generation() {
    let dir = temp_dir("fallback");
    let batches = script_walk(31, 9);
    {
        let mut s = open_base(&dir, no_auto_checkpoint());
        for (i, ops) in batches.iter().enumerate() {
            apply_batch(&mut s, ops).expect("batch commits");
            if i == 2 || i == 5 {
                s.checkpoint().expect("checkpoint");
            }
        }
    }
    // Flip a payload byte of the newest checkpoint.
    let gens = scan_dir(&dir).unwrap();
    let newest = *gens.checkpoints.iter().max().unwrap();
    let path = gsls_durable::ckpt_path(&dir, newest);
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let mut reopened =
        Session::open_with(&dir, GrounderOpts::default(), no_auto_checkpoint()).unwrap();
    assert_eq!(
        reopened.epoch(),
        9,
        "fallback + double replay is idempotent"
    );
    let mut oracle = oracle_with_prefix(&batches, 9);
    assert_sessions_match("checkpoint fallback", &mut reopened, &mut oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Failed commits degrade to rolled-back transactions.
// ---------------------------------------------------------------------

/// A batch rejected by up-front validation (arity mismatch) mutates
/// nothing — no WAL record, no state change — and the session stays
/// writable. The poisoning regression of the issue.
#[test]
fn rejected_batch_leaves_session_writable() {
    let dir = temp_dir("rejected");
    let mut s = open_base(&dir, no_auto_checkpoint());
    s.assert_facts("e(c0, c1).").unwrap();
    let wal_before = {
        let gens = scan_dir(&dir).unwrap();
        std::fs::metadata(wal_path(&dir, *gens.wals.iter().max().unwrap()))
            .unwrap()
            .len()
    };

    s.begin().unwrap();
    s.assert_facts("f(c1).").unwrap();
    // `e` is binary; using it unary must reject the whole batch.
    let err = s.begin().unwrap_err();
    assert_eq!(err, SessionError::NestedTransaction);
    s.assert_facts("e(c1).").unwrap();
    let err = s.commit().unwrap_err();
    assert!(
        matches!(
            &err,
            SessionError::Rejected(r) if matches!(
                r.first(),
                CommitError::ArityMismatch { expected: 2, found: 1, .. }
            )
        ),
        "got {err:?}"
    );
    assert!(!s.is_poisoned(), "rejection must not poison");

    // Nothing was journaled or applied.
    let wal_after = {
        let gens = scan_dir(&dir).unwrap();
        std::fs::metadata(wal_path(&dir, *gens.wals.iter().max().unwrap()))
            .unwrap()
            .len()
    };
    assert_eq!(
        wal_before, wal_after,
        "rejected batch never reaches the WAL"
    );
    assert_eq!(
        s.truth("?- f(c1).").unwrap(),
        Truth::False,
        "batch fully discarded"
    );

    // Still writable, durably.
    s.assert_facts("f(c0). g(c0).").unwrap();
    assert_eq!(s.truth("?- p(c0).").unwrap(), Truth::False);
    drop(s);
    let mut reopened = Session::open(&dir).unwrap();
    assert_eq!(reopened.truth("?- g(c0).").unwrap(), Truth::True);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A batch denied by the static analyzer (safety lint) is rejected
/// with `CommitError::Unsafe` *before* any WAL record is written: the
/// acceptance criterion that unsafe programs are never persisted.
#[test]
fn lint_denied_batch_never_reaches_the_wal() {
    let dir = temp_dir("lint_denied");
    let mut store = TermStore::new();
    let program = parse_program(&mut store, WALK_BASE).expect("base parses");
    // Default (deny-by-default) lint config — NOT the walk's permissive one.
    let mut s = Session::open_with_parts(
        &dir,
        store,
        program,
        GrounderOpts::default(),
        no_auto_checkpoint(),
    )
    .expect("durable open");
    s.assert_facts("e(c0, c1).").unwrap();
    let wal_len = |dir: &Path| {
        let gens = scan_dir(dir).unwrap();
        std::fs::metadata(wal_path(dir, *gens.wals.iter().max().unwrap()))
            .unwrap()
            .len()
    };
    let wal_before = wal_len(&dir);
    let epoch_before = s.epoch();

    // Floundering rule: `X` occurs only under negation.
    let err = s.add_rules("bad(X) :- ~f(X).").unwrap_err();
    match &err {
        SessionError::Rejected(r) => match r.first() {
            CommitError::Unsafe(d) => {
                assert_eq!(d.lint, Lint::NegativeOnlyVar, "got {d:?}");
                assert_eq!(d.severity, Severity::Error);
            }
            other => panic!("expected a lint rejection, got {other}"),
        },
        other => panic!("expected rejection, got {other}"),
    }
    assert!(!s.is_poisoned(), "lint denial must not poison");
    assert_eq!(s.epoch(), epoch_before, "nothing applied");
    assert_eq!(
        wal_len(&dir),
        wal_before,
        "denied batch must be rejected before journaling"
    );

    // Still writable durably, and a reopen never sees the denied rule.
    s.assert_facts("f(c1).").unwrap();
    drop(s);
    let mut reopened = Session::open(&dir).unwrap();
    assert_eq!(reopened.truth("?- f(c1).").unwrap(), Truth::True);
    assert_eq!(reopened.truth("?- p(c1).").unwrap(), Truth::True);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Non-ground facts, function symbols, and arity misuse in rule
/// batches are all rejected up front without touching state.
#[test]
fn validation_rejects_nonground_and_function_symbols() {
    let mut s = Session::from_source("e(a, b).").unwrap();
    // Parse-level guards reject non-ground facts immediately…
    assert!(matches!(
        s.assert_facts("e(X, b)."),
        Err(SessionError::NotAFact(_))
    ));
    // …and function symbols.
    assert!(matches!(
        s.assert_facts("e(s(a), b)."),
        Err(SessionError::NotFunctionFree)
    ));
    // Arity misuse inside a rule batch is a typed commit rejection.
    s.begin().unwrap();
    s.add_rules("p(X) :- e(X).").unwrap();
    let err = s.commit().unwrap_err();
    assert!(
        matches!(
            &err,
            SessionError::Rejected(r) if matches!(
                r.first(),
                CommitError::ArityMismatch { expected: 2, found: 1, .. }
            )
        ),
        "got {err:?}"
    );
    assert!(!s.is_poisoned());
    s.assert_facts("e(b, a).").unwrap();
    assert_eq!(s.truth("?- e(b, a).").unwrap(), Truth::True);
}

/// A commit that blows the grounding clause budget mid-apply is
/// unwound in memory and truncated off the WAL: the session returns to
/// its previous epoch, stays unpoisoned and writable, and a reopen
/// never sees the failed batch.
#[test]
fn budget_failure_restores_previous_state() {
    let dir = temp_dir("budget");
    let mut store = TermStore::new();
    let program = parse_program(&mut store, WALK_BASE).expect("base parses");
    let gopts = GrounderOpts {
        max_clauses: 400,
        ..GrounderOpts::default()
    };
    let mut s =
        Session::open_with_parts(&dir, store, program, gopts, no_auto_checkpoint()).unwrap();
    s.assert_facts("e(c0, c1). e(c1, c2). e(c2, c0).").unwrap();
    let epoch_before = s.epoch();
    let fp_before = fingerprint(&s);

    // A big clique blows the 400-clause budget through t/2 closure.
    let mut batch = String::new();
    for i in 0..24 {
        for j in 0..24 {
            batch.push_str(&format!("e(d{i}, d{j}). "));
        }
    }
    let err = s.assert_facts(&batch).unwrap_err();
    assert!(matches!(err, SessionError::Grounding(_)), "got {err:?}");
    assert!(!s.is_poisoned(), "failed commit must degrade to rollback");
    assert_eq!(s.epoch(), epoch_before);
    assert_eq!(fingerprint(&s), fp_before, "state restored exactly");

    // Still writable…
    s.assert_facts("f(c2).").unwrap();
    assert_eq!(s.truth("?- f(c2).").unwrap(), Truth::True);
    drop(s);
    // …and the failed batch never replays.
    let mut reopened = Session::open_with(&dir, gopts, no_auto_checkpoint()).unwrap();
    assert_eq!(reopened.truth("?- e(d0, d1).").unwrap(), Truth::False);
    assert_eq!(reopened.truth("?- f(c2).").unwrap(), Truth::True);
    let _ = std::fs::remove_dir_all(&dir);
}

/// In-memory sessions get the same recovery semantics (no durable log
/// involved), and `recover()` reports health.
#[test]
fn in_memory_budget_failure_recovers_too() {
    let mut s = Session::with_opts(
        TermStore::new(),
        Program::new(),
        GrounderOpts {
            max_clauses: 200,
            ..GrounderOpts::default()
        },
    )
    .unwrap();
    s.add_rules("t(X, Z) :- e(X, Y), t(Y, Z). t(X, Y) :- e(X, Y).")
        .unwrap();
    s.assert_facts("e(a, b).").unwrap();

    let mut batch = String::new();
    for i in 0..20 {
        for j in 0..20 {
            batch.push_str(&format!("e(x{i}, x{j}). "));
        }
    }
    assert!(matches!(
        s.assert_facts(&batch),
        Err(SessionError::Grounding(_))
    ));
    assert!(!s.is_poisoned());
    s.recover()
        .expect("recover is a no-op on a healthy session");
    assert_eq!(s.truth("?- t(a, b).").unwrap(), Truth::True);
    assert_eq!(s.truth("?- e(x0, x1).").unwrap(), Truth::False);
    s.assert_facts("e(b, c).").unwrap();
    assert_eq!(s.truth("?- t(a, c).").unwrap(), Truth::True);
}

/// `rollback()` after a failed transactional commit discards the batch
/// and leaves a writable session (the old terminal-poisoning path).
#[test]
fn rollback_unpoisons_after_failed_transactional_commit() {
    let mut s = Session::with_opts(
        TermStore::new(),
        Program::new(),
        GrounderOpts {
            max_clauses: 200,
            ..GrounderOpts::default()
        },
    )
    .unwrap();
    s.add_rules("t(X, Z) :- e(X, Y), t(Y, Z). t(X, Y) :- e(X, Y). f(a).")
        .unwrap();
    s.begin().unwrap();
    let mut batch = String::new();
    for i in 0..20 {
        for j in 0..20 {
            batch.push_str(&format!("e(x{i}, x{j}). "));
        }
    }
    s.assert_facts(&batch).unwrap();
    assert!(s.commit().is_err());
    s.rollback();
    assert!(!s.is_poisoned());
    assert!(!s.in_transaction());
    s.assert_facts("e(a, b).").unwrap();
    assert_eq!(s.truth("?- t(a, b).").unwrap(), Truth::True);
}
