//! Experiment E8 — Sec. 7: SLDNF-resolution with a safe computation rule
//! is *sound* with respect to the well-founded semantics for all
//! programs, but *incomplete*: it cannot treat infinite branches as
//! failed. The global SLS engines decide goals SLDNF only times out on.

use global_sls::internals::*;
use global_sls::prelude::*;
use gsls_workloads::{random_program, RandomProgramOpts};

/// Small budgets keep looping queries cheap; the soundness of decided
/// verdicts does not depend on the budget size.
fn small_budget() -> SldnfOpts {
    SldnfOpts {
        max_depth: 48,
        max_nodes: 2_000,
    }
}

/// Whenever SLDNF reaches a definite verdict, it matches the WFM.
#[test]
fn sldnf_sound_wrt_wfs_on_random_programs() {
    let opts = RandomProgramOpts {
        atoms: 8,
        clauses: 14,
        max_body: 3,
        neg_prob: 0.5,
    };
    let mut decided = 0usize;
    for seed in 0..150u64 {
        let mut store = TermStore::new();
        let program = random_program(&mut store, opts, seed);
        let gp = Grounder::ground(&mut store, &program).unwrap();
        let wfm = well_founded_model(&gp);
        for a in gp.atom_ids() {
            let atom = gp.atom(a).clone();
            let goal = Goal::new(vec![Literal::pos(atom.clone())]);
            let r = sldnf_solve(&mut store, &program, &goal, small_budget());
            match r.outcome {
                SldnfOutcome::Success => {
                    decided += 1;
                    assert_eq!(
                        wfm.truth(a),
                        Truth::True,
                        "SLDNF success must be WFS-true: {} (seed {seed})",
                        atom.display(&store)
                    );
                }
                SldnfOutcome::Fail => {
                    decided += 1;
                    assert_eq!(
                        wfm.truth(a),
                        Truth::False,
                        "SLDNF finite failure must be WFS-false: {} (seed {seed})",
                        atom.display(&store)
                    );
                }
                SldnfOutcome::Budget | SldnfOutcome::Floundered => {}
            }
        }
    }
    assert!(decided > 500, "sanity: SLDNF decided {decided} goals");
}

/// The incompleteness witness: `p ← p` makes `← ¬p` loop under SLDNF
/// while both global SLS engines fail `p` (and hence prove `¬p`).
#[test]
fn sldnf_incomplete_where_global_sls_decides() {
    let mut store = TermStore::new();
    let program = parse_program(&mut store, "p :- p.").unwrap();
    let goal = parse_goal(&mut store, "?- ~p.").unwrap();
    let sldnf = sldnf_solve(&mut store, &program, &goal, small_budget());
    assert_eq!(sldnf.outcome, SldnfOutcome::Budget, "SLDNF loops");
    // Global tree engine: p failed, so ~p succeeds.
    let tree = GlobalTree::build(
        &mut store,
        &program,
        &goal,
        gsls_core::GlobalOpts::default(),
    );
    assert_eq!(tree.status(), Status::Successful);
}

/// Outcome precedence, pinned: a goal that both flounders and exhausts
/// its budget reports `Floundered`, not `Budget`. Floundering is a
/// structural property of the query — it sits outside the safe-rule
/// fragment and no budget increase can fix it — so it is the more
/// actionable diagnosis; `Budget` would invite a pointless retry with
/// more fuel. (Either status equally blocks claims of finite failure,
/// so soundness is unaffected by the choice.)
#[test]
fn floundering_takes_precedence_over_budget() {
    let mut store = TermStore::new();
    let program = parse_program(&mut store, "r :- ~q(X). r :- p. p :- p. q(a).").unwrap();
    let goal = parse_goal(&mut store, "?- r.").unwrap();
    let r = sldnf_solve(&mut store, &program, &goal, small_budget());
    assert_eq!(r.outcome, SldnfOutcome::Floundered);
    // A pure budget case still reports Budget…
    let goal_p = parse_goal(&mut store, "?- p.").unwrap();
    let rp = sldnf_solve(&mut store, &program, &goal_p, small_budget());
    assert_eq!(rp.outcome, SldnfOutcome::Budget);
    // …and an answer on any branch outranks both diagnoses.
    let program2 = parse_program(&mut store, "r :- ~q(X). r. q(a).").unwrap();
    let goal2 = parse_goal(&mut store, "?- r.").unwrap();
    let r2 = sldnf_solve(&mut store, &program2, &goal2, small_budget());
    assert_eq!(r2.outcome, SldnfOutcome::Success);
}

/// Quantifying the gap: on random programs the tabled engine decides
/// every atom; SLDNF leaves a nontrivial fraction undecided.
#[test]
fn global_sls_decides_strictly_more() {
    let opts = RandomProgramOpts {
        atoms: 8,
        clauses: 16,
        max_body: 3,
        neg_prob: 0.5,
    };
    let mut sldnf_undecided = 0usize;
    let mut total = 0usize;
    for seed in 300..360u64 {
        let mut store = TermStore::new();
        let program = random_program(&mut store, opts, seed);
        let gp = Grounder::ground(&mut store, &program).unwrap();
        let wfm = well_founded_model(&gp);
        for a in gp.atom_ids() {
            total += 1;
            let atom = gp.atom(a).clone();
            let goal = Goal::new(vec![Literal::pos(atom)]);
            let r = sldnf_solve(&mut store, &program, &goal, small_budget());
            let sldnf_decided = matches!(r.outcome, SldnfOutcome::Success | SldnfOutcome::Fail);
            if !sldnf_decided && wfm.truth(a) != Truth::Undefined {
                // WFS (hence global SLS) decides it; SLDNF does not.
                sldnf_undecided += 1;
            }
        }
    }
    assert!(
        sldnf_undecided > 0,
        "expected SLDNF to miss some WFS-decided goals ({total} total)"
    );
}
