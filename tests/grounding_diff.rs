//! Differential tests for the join-plan grounder (PR 3).
//!
//! Three oracles pin the planned semi-naive path:
//!
//! * `JoinStrategy::Naive` — unordered full-scan joins re-run to
//!   fixpoint — must produce the **same clause set** (modulo emission
//!   order) on every workload and on random relational programs,
//!   including wide rules (≥4 body literals with shared variables);
//! * `GroundingMode::Full` — the whole depth-bounded Herbrand
//!   instantiation — must agree with relevant grounding on the
//!   **well-founded model restricted to the relevant program's atoms**
//!   (derivable atoms keep their truth value; atoms the relevant
//!   grounder interns without rules are false in both);
//! * the chain regression: delta-restricted index probes keep the
//!   total candidate count linear in the derivation chain.

use gsls_ground::testutil::sorted_clauses;
use gsls_ground::{
    GroundProgram, Grounder, GrounderOpts, GroundingMode, HerbrandOpts, JoinStrategy,
};
use gsls_lang::{Program, TermStore};
use gsls_wfs::well_founded_model;
use gsls_workloads::{
    negated_reachability, odd_even_chain, random_relational_program, van_gelder_program, win_grid,
    RandomRelationalOpts,
};
use proptest::prelude::*;

fn ground_strategy(
    mk: impl Fn(&mut TermStore) -> Program,
    opts: GrounderOpts,
) -> (TermStore, GroundProgram) {
    let mut store = TermStore::new();
    let program = mk(&mut store);
    let gp = Grounder::ground_with(&mut store, &program, opts).expect("workload grounds");
    (store, gp)
}

/// Planned and naive strategies must agree clause-for-clause.
fn assert_strategies_agree(mk: impl Fn(&mut TermStore) -> Program, opts: GrounderOpts, what: &str) {
    let planned = ground_strategy(&mk, opts);
    let naive = ground_strategy(
        &mk,
        GrounderOpts {
            strategy: JoinStrategy::Naive,
            ..opts
        },
    );
    assert_eq!(
        sorted_clauses(&planned.0, &planned.1),
        sorted_clauses(&naive.0, &naive.1),
        "planned vs naive divergence on {what}"
    );
}

#[test]
fn plan_path_matches_naive_on_existing_workloads() {
    assert_strategies_agree(
        |s| win_grid(s, 12, 12),
        GrounderOpts::default(),
        "win_grid 12x12",
    );
    assert_strategies_agree(
        |s| negated_reachability(s, 8),
        GrounderOpts::default(),
        "negated_reachability 8",
    );
    assert_strategies_agree(
        |s| odd_even_chain(s, 16),
        GrounderOpts::default(),
        "odd_even_chain 16",
    );
    assert_strategies_agree(
        van_gelder_program,
        GrounderOpts {
            universe: HerbrandOpts {
                max_depth: 8,
                max_terms: 10_000,
            },
            ..GrounderOpts::default()
        },
        "van_gelder depth 8",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Planned vs naive joins on random function-free relational
    /// programs.
    #[test]
    fn plan_matches_naive_on_random_relational(
        seed in any::<u64>(),
        constants in 2usize..5,
        facts in 1usize..12,
        rules in 1usize..7,
    ) {
        let opts = RandomRelationalOpts {
            constants,
            facts,
            rules,
            ..RandomRelationalOpts::default()
        };
        let mk = |s: &mut TermStore| random_relational_program(s, opts, seed);
        let planned = ground_strategy(mk, GrounderOpts::default());
        let naive = ground_strategy(mk, GrounderOpts {
            strategy: JoinStrategy::Naive,
            ..GrounderOpts::default()
        });
        prop_assert_eq!(
            sorted_clauses(&planned.0, &planned.1),
            sorted_clauses(&naive.0, &naive.1),
            "seed {}", seed
        );
    }

    /// The same oracle on wide rules: ≥4 positive/negative body
    /// literals drawn from a 4-variable pool, so plans must reorder,
    /// probe composite indexes, and split deltas across many positions.
    #[test]
    fn plan_matches_naive_on_wide_rules(seed in any::<u64>()) {
        let opts = RandomRelationalOpts {
            constants: 3,
            preds: 3,
            facts: 9,
            rules: 4,
            min_body: 4,
            max_body: 6,
            vars: 4,
            neg_prob: 0.25,
            ..RandomRelationalOpts::default()
        };
        let mk = |s: &mut TermStore| random_relational_program(s, opts, seed);
        let planned = ground_strategy(mk, GrounderOpts::default());
        let naive = ground_strategy(mk, GrounderOpts {
            strategy: JoinStrategy::Naive,
            ..GrounderOpts::default()
        });
        prop_assert_eq!(
            sorted_clauses(&planned.0, &planned.1),
            sorted_clauses(&naive.0, &naive.1),
            "seed {}", seed
        );
    }

    /// Relevant grounding preserves the well-founded model on the atoms
    /// it interns: derivable atoms keep their truth value from the full
    /// instantiation, and atoms pruned as underivable are false there.
    #[test]
    fn relevant_and_full_agree_on_wfm(seed in any::<u64>()) {
        let opts = RandomRelationalOpts {
            constants: 3,
            preds: 3,
            facts: 6,
            rules: 5,
            max_body: 3,
            vars: 3,
            neg_prob: 0.4,
            ..RandomRelationalOpts::default()
        };
        let mut store = TermStore::new();
        let program = random_relational_program(&mut store, opts, seed);
        let relevant = Grounder::ground(&mut store, &program).expect("relevant grounds");
        let full = Grounder::ground_with(&mut store, &program, GrounderOpts {
            mode: GroundingMode::Full,
            ..GrounderOpts::default()
        })
        .expect("full grounds");
        prop_assert!(relevant.clause_count() <= full.clause_count());
        let wfm_rel = well_founded_model(&relevant);
        let wfm_full = well_founded_model(&full);
        for id in relevant.atom_ids() {
            let atom = relevant.atom(id);
            let full_id = full
                .lookup_atom(atom)
                .expect("every relevant atom is fully instantiated");
            prop_assert_eq!(
                wfm_rel.truth(id),
                wfm_full.truth(full_id),
                "atom {} diverges, seed {}",
                atom.display(&store),
                seed
            );
        }
    }
}
