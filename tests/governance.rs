//! Engine-wide deadlines, cancellation, and resource governance (PR 8).
//!
//! The central invariant: **an interrupted commit is a rolled-back
//! transaction**. Whether the guard trips during grounding, during the
//! model refresh, from a deadline, from another thread's
//! [`InterruptHandle`], or from injected fuel exhaustion — the session
//! must come back at its previous epoch, unpoisoned, with no WAL
//! record of the failed batch, and keep committing. A panic escaping
//! mid-commit (the `panic_on_fuel` hook) is allowed to leave the
//! session poisoned, but [`Session::recover`] must always bring it
//! back to the same rolled-back state.
//!
//! The sweeps:
//!
//! * `interrupt_at_every_phase_*` — fuel-driven: re-run one commit with
//!   fuel 0, 1, 2, … until it succeeds, asserting post-interrupt state
//!   ≡ a rollback oracle at every step (the interrupt thereby lands in
//!   every guard-checked phase: admission, grounding rounds, memory
//!   polls, refresh rounds);
//! * `panic_at_every_stage_*` — same sweep with `panic_on_fuel`,
//!   `catch_unwind`, and a `recover()` that must always succeed;
//! * `cancel_mid_commit_from_another_thread` — satellite 3's
//!   concurrent interruption on the 600×600 grid;
//! * `cancel_interleaved_walk_matches_rebuild` — seed-swept random
//!   walk interleaving governed (usually interrupted) commit attempts
//!   into the PR 5 session-vs-rebuild property.
//!
//! Queries get the weaker, better contract: a governed enumeration
//! that trips reports `interrupted()` and keeps every answer already
//! streamed (a *partial* outcome, like a resolution budget), because
//! read-only evaluation has nothing to roll back.

use global_sls::internals::Guard;
use global_sls::prelude::*;
use gsls_workloads::win_grid;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Shared machinery (mirrors tests/durability.rs).
// ---------------------------------------------------------------------

/// Minimal deterministic PRNG (splitmix-style; see tests/incremental.rs).
struct Walk(u64);

impl Walk {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 > 1.0 - p
    }
}

const WALK_BASE: &str = "
    t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).
    w(X) :- e(X, Y), ~w(Y).
    p(X) :- f(X), ~g(X).
    f(c0).
";

/// The model as displayable fact sets (true, undefined).
fn fingerprint(s: &Session) -> (BTreeSet<String>, BTreeSet<String>) {
    let gp = s.ground_program();
    let mut t = BTreeSet::new();
    let mut u = BTreeSet::new();
    for id in gp.atom_ids() {
        match s.model().truth(id) {
            Truth::True => {
                t.insert(gp.display_atom(s.store(), id));
            }
            Truth::Undefined => {
                u.insert(gp.display_atom(s.store(), id));
            }
            Truth::False => {}
        }
    }
    (t, u)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gsls_governance_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn no_auto_checkpoint() -> DurableOpts {
    DurableOpts {
        checkpoint_records: usize::MAX,
        checkpoint_bytes: u64::MAX,
        ..DurableOpts::default()
    }
}

/// A batch heavy enough that grounding + refresh cross many guard
/// checks (t/2 closure over a clique: ~n² atoms, ~n³ join rows).
fn clique_batch(n: usize) -> String {
    let mut batch = String::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                batch.push_str(&format!("e(k{i}, k{j}). "));
            }
        }
    }
    batch
}

/// Begins a transaction, queues `batch`, commits with `opts`.
fn governed_commit(
    s: &mut Session,
    batch: &str,
    opts: &CommitOpts,
) -> Result<CommitStats, SessionError> {
    s.begin()?;
    if let Err(e) = s.assert_facts(batch) {
        s.rollback();
        return Err(e);
    }
    s.commit_with(opts)
}

// ---------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------

/// A batch predicted to blow the clause cap is rejected in the
/// Admission phase before the WAL sees a record; the same batch then
/// commits fine ungoverned.
#[test]
fn admission_rejects_before_wal() {
    use global_sls::durable::{scan_dir, wal_path};
    let dir = temp_dir("admission");
    let mut s = Session::open_with(&dir, GrounderOpts::default(), no_auto_checkpoint())
        .expect("durable open");
    s.add_rules("t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).")
        .unwrap();
    let wal_len = |dir: &PathBuf| {
        let gens = scan_dir(dir).unwrap();
        std::fs::metadata(wal_path(dir, *gens.wals.iter().max().unwrap()))
            .unwrap()
            .len()
    };
    let wal_before = wal_len(&dir);
    let epoch_before = s.epoch();
    let fp_before = fingerprint(&s);

    let opts = CommitOpts {
        max_clauses: Some(50),
        ..CommitOpts::default()
    };
    let err = governed_commit(&mut s, &clique_batch(12), &opts).unwrap_err();
    assert!(
        matches!(
            err,
            SessionError::Interrupted {
                phase: InterruptPhase::Admission,
                cause: InterruptCause::MemoryBudget,
                ..
            }
        ),
        "got {err:?}"
    );
    assert!(!s.is_poisoned());
    assert_eq!(s.epoch(), epoch_before);
    assert_eq!(fingerprint(&s), fp_before);
    assert_eq!(
        wal_len(&dir),
        wal_before,
        "admission rejection must precede journaling"
    );

    // A tiny memory budget rejects the same way.
    let opts = CommitOpts {
        max_memory_bytes: Some(1),
        ..CommitOpts::default()
    };
    let err = governed_commit(&mut s, &clique_batch(12), &opts).unwrap_err();
    assert!(matches!(
        err,
        SessionError::Interrupted {
            phase: InterruptPhase::Admission,
            ..
        }
    ));

    // Ungoverned, the batch is perfectly fine.
    s.begin().unwrap();
    s.assert_facts(&clique_batch(12)).unwrap();
    s.commit().expect("ungoverned commit succeeds");
    assert_eq!(s.truth("?- t(k0, k1).").unwrap(), Truth::True);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An unlimited `CommitOpts` admits everything: `commit_with` with the
/// default opts behaves exactly like `commit`.
#[test]
fn default_opts_are_ungoverned() {
    let mut s = Session::from_source(WALK_BASE).unwrap();
    s.begin().unwrap();
    s.assert_facts("e(c0, c1). e(c1, c0).").unwrap();
    s.commit_with(&CommitOpts::none()).unwrap();
    assert_eq!(s.truth("?- t(c0, c0).").unwrap(), Truth::True);
    assert_eq!(s.truth("?- w(c0).").unwrap(), Truth::Undefined);
}

/// An already-expired deadline interrupts the commit mid-apply and the
/// session rolls back to its previous epoch, then keeps committing.
#[test]
fn expired_deadline_rolls_back_and_session_continues() {
    let mut s = Session::from_source(WALK_BASE).unwrap();
    s.assert_facts("e(c0, c1).").unwrap();
    let fp_before = fingerprint(&s);
    let epoch_before = s.epoch();

    let opts = CommitOpts {
        deadline: Some(Instant::now() - Duration::from_millis(1)),
        ..CommitOpts::default()
    };
    let err = governed_commit(&mut s, &clique_batch(10), &opts).unwrap_err();
    match err {
        SessionError::Interrupted { phase, cause, .. } => {
            assert_eq!(cause, InterruptCause::DeadlineExceeded);
            assert!(
                matches!(
                    phase,
                    InterruptPhase::Grounding | InterruptPhase::ModelRefresh
                ),
                "deadline tripped in {phase}"
            );
        }
        other => panic!("expected an interrupt, got {other:?}"),
    }
    assert!(!s.is_poisoned(), "timeout ≡ rolled-back txn");
    assert_eq!(s.epoch(), epoch_before);
    assert_eq!(fingerprint(&s), fp_before, "state restored exactly");

    // A generous deadline lets the same batch through.
    let opts = CommitOpts::none().with_timeout(Duration::from_secs(600));
    governed_commit(&mut s, &clique_batch(10), &opts).expect("commit within deadline");
    assert_eq!(s.truth("?- t(k0, k0).").unwrap(), Truth::True);
}

// ---------------------------------------------------------------------
// The interrupt-at-every-phase sweep (fuel-driven).
// ---------------------------------------------------------------------

/// Interrupts one fixed commit at every guard check it performs (fuel
/// 0, 1, 2, … until the commit succeeds), asserting post-interrupt
/// state ≡ the rollback oracle every time — on an in-memory session
/// and, when `dir` is set, on a durable one whose WAL must stay at its
/// pre-commit length.
fn interrupt_at_every_phase(durable: bool) {
    let dir = durable.then(|| temp_dir("phase_sweep"));
    let mut s = match &dir {
        Some(d) => {
            let mut store = TermStore::new();
            let program = parse_program(&mut store, WALK_BASE).unwrap();
            Session::open_with_parts(
                d,
                store,
                program,
                GrounderOpts::default(),
                no_auto_checkpoint(),
            )
            .unwrap()
        }
        None => Session::from_source(WALK_BASE).unwrap(),
    };
    s.assert_facts("e(c0, c1). e(c1, c2). g(c1).").unwrap();
    let fp_before = fingerprint(&s);
    let epoch_before = s.epoch();
    let wal_before = dir.as_ref().map(|d| {
        use global_sls::durable::{scan_dir, wal_path};
        let gens = scan_dir(d).unwrap();
        std::fs::metadata(wal_path(d, *gens.wals.iter().max().unwrap()))
            .unwrap()
            .len()
    });
    let batch = clique_batch(8);

    let mut interrupted_at = 0u64;
    for fuel in 0.. {
        let opts = CommitOpts {
            fuel: Some(fuel),
            ..CommitOpts::default()
        };
        match governed_commit(&mut s, &batch, &opts) {
            Ok(_) => {
                assert!(fuel > 0, "a zero-fuel commit of this batch cannot succeed");
                break;
            }
            Err(SessionError::Interrupted { cause, .. }) => {
                assert_eq!(cause, InterruptCause::Cancelled, "fuel trips as Cancelled");
                interrupted_at = fuel;
            }
            Err(other) => panic!("fuel {fuel}: unexpected error {other:?}"),
        }
        // The rollback oracle: previous epoch, unpoisoned, identical
        // state, untouched WAL.
        assert!(!s.is_poisoned(), "fuel {fuel}: interrupt must not poison");
        assert_eq!(s.epoch(), epoch_before, "fuel {fuel}");
        assert_eq!(fingerprint(&s), fp_before, "fuel {fuel}: state diverged");
        if let (Some(d), Some(before)) = (&dir, wal_before) {
            use global_sls::durable::{scan_dir, wal_path};
            let gens = scan_dir(d).unwrap();
            let len = std::fs::metadata(wal_path(d, *gens.wals.iter().max().unwrap()))
                .unwrap()
                .len();
            assert_eq!(len, before, "fuel {fuel}: interrupted record not truncated");
        }
    }
    assert!(
        interrupted_at >= 2,
        "the sweep should cross several distinct guard checks, last interrupt at {interrupted_at}"
    );
    // The final (successful) governed commit matches an ungoverned
    // oracle of the same history.
    let mut oracle = Session::from_source(WALK_BASE).unwrap();
    oracle.assert_facts("e(c0, c1). e(c1, c2). g(c1).").unwrap();
    oracle.assert_facts(&batch).unwrap();
    assert_eq!(
        fingerprint(&s),
        fingerprint(&oracle),
        "surviving commit must equal the ungoverned oracle"
    );
    if let Some(d) = dir {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn interrupt_at_every_phase_in_memory() {
    interrupt_at_every_phase(false);
}

#[test]
fn interrupt_at_every_phase_durable() {
    interrupt_at_every_phase(true);
}

// ---------------------------------------------------------------------
// The panic-at-every-stage sweep.
// ---------------------------------------------------------------------

/// Same sweep with `panic_on_fuel`: the panic escapes mid-commit
/// through `catch_unwind`, the session reports poisoned (torn), and
/// `recover()` must always restore the rollback-oracle state.
fn panic_at_every_stage(durable: bool) {
    let dir = durable.then(|| temp_dir("panic_sweep"));
    let mut s = match &dir {
        Some(d) => {
            let mut store = TermStore::new();
            let program = parse_program(&mut store, WALK_BASE).unwrap();
            Session::open_with_parts(
                d,
                store,
                program,
                GrounderOpts::default(),
                no_auto_checkpoint(),
            )
            .unwrap()
        }
        None => Session::from_source(WALK_BASE).unwrap(),
    };
    s.assert_facts("e(c0, c1). e(c1, c2). g(c1).").unwrap();
    let fp_before = fingerprint(&s);
    let epoch_before = s.epoch();
    let batch = clique_batch(8);

    let mut panicked = 0usize;
    for fuel in 0.. {
        let opts = CommitOpts {
            fuel: Some(fuel),
            panic_on_fuel: true,
            ..CommitOpts::default()
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| governed_commit(&mut s, &batch, &opts)));
        match outcome {
            Ok(Ok(_)) => break,
            Ok(Err(e)) => panic!("fuel {fuel}: panic_on_fuel returned an error: {e:?}"),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_default();
                assert!(
                    msg.contains("governance fuel exhausted"),
                    "fuel {fuel}: foreign panic {msg:?}"
                );
                panicked += 1;
            }
        }
        // The torn session refuses writes until recovered…
        assert!(s.is_poisoned(), "fuel {fuel}: escaped panic must poison");
        assert!(matches!(
            s.assert_facts("f(c9)."),
            Err(SessionError::Poisoned)
        ));
        // …and recover() always brings back the rollback oracle.
        s.recover().expect("recover after mid-commit panic");
        assert!(!s.is_poisoned(), "fuel {fuel}: recover must unpoison");
        assert_eq!(s.epoch(), epoch_before, "fuel {fuel}");
        assert_eq!(
            fingerprint(&s),
            fp_before,
            "fuel {fuel}: recovered state diverged"
        );
    }
    assert!(panicked >= 2, "the sweep should panic in several stages");

    // Durable flavor: a reboot (reopen) after the last recovery also
    // lands on the rollback oracle — the torn WAL record never replays.
    if let Some(d) = dir {
        drop(s);
        let mut reopened =
            Session::open_with(&d, GrounderOpts::default(), no_auto_checkpoint()).unwrap();
        assert_eq!(
            reopened.epoch(),
            epoch_before + 1,
            "reopen sees the final successful commit"
        );
        assert!(reopened.truth("?- t(k0, k1).").unwrap() == Truth::True);
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn panic_at_every_stage_in_memory() {
    panic_at_every_stage(false);
}

#[test]
fn panic_at_every_stage_durable() {
    panic_at_every_stage(true);
}

// ---------------------------------------------------------------------
// Satellite 3: concurrent interruption.
// ---------------------------------------------------------------------

/// A second thread cancels through `interrupt_handle()` while the
/// session grinds a 600×600 grid commit: the commit must come back
/// `Interrupted`, rolled back and unpoisoned, and the next (small)
/// commit must succeed — the cancellation is consumed by the commit it
/// landed on.
#[test]
fn cancel_mid_commit_from_another_thread() {
    let mut store = TermStore::new();
    let program = win_grid(&mut store, 600, 600);
    // Stage the whole grid as one transactional batch on an empty
    // session: the win rule, then every move fact.
    let mut rules = String::new();
    let mut facts = String::with_capacity(32 * program.len());
    for c in program.clauses() {
        let line = c.display(&store);
        if c.body.is_empty() {
            facts.push_str(&line);
            facts.push('\n');
        } else {
            rules.push_str(&line);
            rules.push('\n');
        }
    }
    let mut s = Session::from_source("").unwrap();
    s.begin().unwrap();
    s.add_rules(&rules).unwrap();
    s.assert_facts(&facts).unwrap();

    let handle = s.interrupt_handle();
    let (tx, rx) = std::sync::mpsc::channel::<()>();
    let canceller = std::thread::spawn(move || {
        rx.recv().expect("commit started");
        std::thread::sleep(Duration::from_millis(100));
        handle.cancel();
    });
    tx.send(()).unwrap();
    let started = Instant::now();
    let err = s.commit_with(&CommitOpts::none()).unwrap_err();
    let latency = started.elapsed();
    canceller.join().unwrap();

    assert!(
        matches!(
            err,
            SessionError::Interrupted {
                cause: InterruptCause::Cancelled,
                ..
            }
        ),
        "got {err:?}"
    );
    assert!(!s.is_poisoned(), "cancelled commit must roll back cleanly");
    assert_eq!(s.epoch(), 0, "nothing committed");
    assert!(!s.in_transaction(), "the batch was consumed");
    assert!(
        latency < Duration::from_secs(30),
        "cancellation took {latency:?}"
    );

    // The flag was consumed: a fresh commit goes through untroubled.
    s.begin().unwrap();
    s.add_rules("win(X) :- move(X, Y), ~win(Y).").unwrap();
    s.assert_facts("move(a, b).").unwrap();
    s.commit_with(&CommitOpts::none())
        .expect("post-cancel commit succeeds");
    assert_eq!(s.truth("?- win(a).").unwrap(), Truth::True);
}

/// Seed-swept: governed (fuel-starved, usually interrupted, sometimes
/// panicking-and-recovered) commit attempts interleave into the PR 5
/// random walk; after every step the session must match a from-scratch
/// rebuild that only saw the *successful* batches.
#[test]
fn cancel_interleaved_walk_matches_rebuild() {
    let seeds: Vec<u64> = match std::env::var("GSLS_GOVERN_SEED") {
        Ok(v) => {
            let base: u64 = v.parse().expect("GSLS_GOVERN_SEED must be an integer");
            (0..3)
                .map(|i| base.wrapping_mul(131).wrapping_add(i))
                .collect()
        }
        Err(_) => vec![3, 17, 29],
    };
    for seed in seeds {
        cancel_interleaved_walk(seed);
    }
}

fn cancel_interleaved_walk(seed: u64) {
    let mut rng = Walk(seed);
    let mut s = Session::from_source(WALK_BASE).unwrap();
    s.set_lint_config(LintConfig::permissive());
    // The rebuild oracle replays only the batches that committed.
    let mut committed: Vec<String> = Vec::new();
    for step in 0..10 {
        let n_consts = 3 + step % 4;
        let mut batch = String::new();
        for _ in 0..2 + rng.below(3) {
            let c = |rng: &mut Walk| format!("c{}", rng.below(n_consts));
            match rng.below(3) {
                0 => batch.push_str(&format!("e({}, {}). ", c(&mut rng), c(&mut rng))),
                1 => batch.push_str(&format!("f({}). ", c(&mut rng))),
                _ => batch.push_str(&format!("h({}, {}). ", c(&mut rng), c(&mut rng))),
            }
        }
        let fp_before = fingerprint(&s);
        if rng.chance(0.6) {
            // A governed attempt with starvation fuel: usually trips,
            // occasionally succeeds (both fine — the oracle follows
            // what actually happened). A third of the attempts panic
            // out of the commit instead of returning, so the walk also
            // exercises mid-flight recovery.
            let inject_panic = rng.chance(0.34);
            let opts = CommitOpts {
                fuel: Some(rng.below(4) as u64),
                panic_on_fuel: inject_panic,
                ..CommitOpts::default()
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| governed_commit(&mut s, &batch, &opts)));
            match outcome {
                Ok(Ok(_)) => committed.push(batch.clone()),
                Ok(Err(SessionError::Interrupted { .. })) => {
                    assert!(!s.is_poisoned(), "seed {seed} step {step}");
                    assert_eq!(
                        fingerprint(&s),
                        fp_before,
                        "seed {seed} step {step}: interrupted commit leaked state"
                    );
                    // Retry ungoverned: the session must not hold a
                    // grudge.
                    s.assert_facts(&batch).expect("retry commits");
                    committed.push(batch.clone());
                }
                Ok(Err(other)) => panic!("seed {seed} step {step}: {other:?}"),
                Err(_) => {
                    assert!(inject_panic, "seed {seed} step {step}: foreign panic");
                    assert!(
                        s.is_poisoned(),
                        "seed {seed} step {step}: escaped panic must poison"
                    );
                    s.recover().expect("recover mid-walk");
                    assert_eq!(
                        fingerprint(&s),
                        fp_before,
                        "seed {seed} step {step}: recovery diverged"
                    );
                    s.assert_facts(&batch).expect("retry after recovery");
                    committed.push(batch.clone());
                }
            }
        } else {
            s.assert_facts(&batch).expect("ungoverned walk commit");
            committed.push(batch.clone());
        }
        // Session ≡ rebuild of the committed prefix.
        let mut oracle = Session::from_source(WALK_BASE).unwrap();
        oracle.set_lint_config(LintConfig::permissive());
        for b in &committed {
            oracle.assert_facts(b).unwrap();
        }
        assert_eq!(
            fingerprint(&s),
            fingerprint(&oracle),
            "seed {seed} step {step}: session diverged from rebuild"
        );
    }
}

// ---------------------------------------------------------------------
// Governed queries: partial answers, never errors.
// ---------------------------------------------------------------------

/// A fuel-starved governed query stops early with `interrupted()` set
/// and keeps the answers already streamed; ungoverned it enumerates
/// everything with `interrupted` clear.
#[test]
fn governed_query_returns_partial_answers() {
    let mut store = TermStore::new();
    let program = win_grid(&mut store, 40, 40);
    let mut s = Session::from_parts(store, program).unwrap();

    let full = s.query("?- move(X, Y).").unwrap();
    assert!(full.interrupted.is_none());
    let total = full.answers.len();
    assert!(total > 3000, "grid should have thousands of edges: {total}");

    // Fuel for exactly one tick window: the enumeration is cut off.
    let opts = QueryOpts {
        fuel: Some(1),
        ..QueryOpts::default()
    };
    let partial = s.query_governed("?- move(X, Y).", &opts).unwrap();
    assert_eq!(partial.interrupted, Some(InterruptCause::Cancelled));
    assert!(
        partial.answers.len() < total,
        "a starved query must not finish: {} vs {total}",
        partial.answers.len()
    );
    // Every partial answer is a real answer.
    let all: BTreeSet<String> = full.answers.iter().map(|a| a.display(s.store())).collect();
    for a in &partial.answers {
        assert!(all.contains(&a.display(s.store())));
    }

    // An expired deadline reports DeadlineExceeded the same way.
    let opts = QueryOpts {
        deadline: Some(Instant::now() - Duration::from_millis(1)),
        ..QueryOpts::default()
    };
    let timed = s.query_governed("?- move(X, Y).", &opts).unwrap();
    assert_eq!(timed.interrupted, Some(InterruptCause::DeadlineExceeded));

    // Ungoverned again: the session serves the full set as before.
    let again = s.query("?- move(X, Y).").unwrap();
    assert_eq!(again.answers.len(), total);
    assert!(again.interrupted.is_none());
}

/// Cancelling through the session's handle mid-stream stops the
/// iterator; the already-yielded answers stay valid.
#[test]
fn cancel_stops_a_streaming_query() {
    let mut store = TermStore::new();
    let program = win_grid(&mut store, 40, 40);
    let mut s = Session::from_parts(store, program).unwrap();
    let handle = s.interrupt_handle();

    let mut q = s.prepare("?- move(X, Y).").unwrap();
    let mut stream = q.execute_governed(&mut s, &QueryOpts::default()).unwrap();
    let mut yielded = 0usize;
    for a in stream.by_ref() {
        assert!(matches!(a.truth, Truth::True | Truth::Undefined));
        yielded += 1;
        if yielded == 10 {
            handle.cancel();
        }
    }
    assert_eq!(
        stream.interrupted(),
        Some(InterruptCause::Cancelled),
        "the stream must report why it went quiet"
    );
    assert!(yielded >= 10, "cancellation cannot retract answers");
    drop(stream);

    // A snapshot stream takes a caller-built guard instead.
    let snap = s.snapshot();
    let guard = Guard::builder().fuel(1).build();
    let q2 = s.prepare("?- move(X, Y).").unwrap();
    let got: Vec<Answer> = q2.execute_on_governed(&snap, &guard).unwrap().collect();
    // fuel(1) survives two checks: the cut lands at the second
    // TICK_INTERVAL crossing, i.e. at most 2048 backtracking steps.
    assert!(got.len() <= 2048, "starved snapshot stream must be partial");
}
