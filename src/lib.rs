//! # global-sls — Global SLS-resolution for well-founded negation
//!
//! A full implementation of **Kenneth A. Ross, "A Procedural Semantics
//! for Well-Founded Negation in Logic Programs"** (PODS 1989; JLP 1992):
//! global trees, SLP-trees, ordinal levels, computation rules, the
//! effective memoized engine for function-free programs, the bottom-up
//! well-founded-model baselines, and the SLD/SLDNF/SLS comparison
//! procedures — grown into an **incremental deductive-database engine**
//! served through the [`prelude::Session`] API.
//!
//! ## Quickstart
//!
//! A [`prelude::Session`] owns the term store, the program, and a
//! continuously maintained well-founded model. Updates are
//! transactional and delta-grounded; queries are prepared once and
//! stream their answers; snapshots give lock-free concurrent reads.
//!
//! ```
//! use global_sls::prelude::*;
//!
//! let mut session = Session::from_source(
//!     "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).",
//! )?;
//!
//! // Prepared queries compile once and stream answers.
//! let mut winners = session.prepare("?- win(X).")?;
//! let wins: Vec<Answer> = winners.execute(&mut session)?.collect();
//! assert_eq!(wins.len(), 1); // win(b): b can move to the lost c
//! assert_eq!(wins[0].truth, Truth::True);
//!
//! // Incremental update: give c an escape move. The commit re-joins
//! // only the affected plans and repairs the model on warm chains —
//! // no re-grounding, no from-scratch solve.
//! session.assert_facts("move(c, a).")?;
//! assert_eq!(session.truth("?- win(b).")?, Truth::Undefined); // all draws now
//!
//! // Retraction is a model-level switch; re-asserting re-enables.
//! session.retract_facts("move(c, a).")?;
//! assert_eq!(session.truth("?- win(b).")?, Truth::True);
//!
//! // Transactions batch updates atomically.
//! session.begin()?;
//! session.assert_facts("move(c, a).")?;
//! session.retract_facts("move(b, c).")?;
//! session.rollback(); // never mind
//!
//! // Snapshots are cheap, immutable, Send + Sync: readers on other
//! // threads keep their epoch while the session commits on.
//! let snapshot = session.snapshot();
//! let frozen = session.prepare("?- win(X).")?;
//! session.assert_facts("move(c, a).")?;
//! assert_eq!(frozen.execute_on(&snapshot)?.count(), 1); // pre-commit view
//! assert_eq!(session.truth("?- win(b).")?, Truth::Undefined); // live view
//! # Ok::<(), SessionError>(())
//! ```
//!
//! ## Durability & recovery
//!
//! [`prelude::Session::open`] roots a session in a directory and makes
//! every commit **durable**: the batch is validated up front (typed
//! [`prelude::CommitError`] rejections mutate nothing), serialized as a
//! checksummed write-ahead-log record, and fsync'd *before* the
//! in-memory apply — so an acknowledged commit survives a crash at any
//! instant. Reopening the directory loads the newest valid checkpoint
//! (falling back one generation if the newest fails its checksum) and
//! replays the WAL tail through the normal commit path; a torn or
//! corrupt tail left by a crash mid-append is detected by checksum and
//! truncated, never replayed. Checkpoints are taken automatically once
//! the WAL passes the [`prelude::DurableOpts`] thresholds, or on demand
//! with [`prelude::Session::checkpoint`]; they are written atomically
//! (temp file + rename) and rotate the WAL.
//!
//! ```
//! use global_sls::prelude::*;
//!
//! let dir = std::env::temp_dir().join(format!("gsls_doc_{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! {
//!     let mut session = Session::open(&dir)?;
//!     session.add_rules("win(X) :- move(X, Y), ~win(Y).")?;
//!     session.assert_facts("move(a, b).")?;
//! } // dropped without ceremony — the commits are already on disk
//! let mut session = Session::open(&dir)?;
//! assert_eq!(session.truth("?- win(a).")?, Truth::True);
//! session.checkpoint()?; // explicit snapshot + WAL rotation
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), SessionError>(())
//! ```
//!
//! Failure is non-fatal by design: a commit that fails mid-apply
//! (e.g. the grounding clause budget) is unwound — its WAL record is
//! truncated off and the engine state is rebuilt at the previous epoch
//! — so it degrades to a rolled-back transaction and the session stays
//! writable. Only a failure of that rebuild itself poisons the
//! session, and [`prelude::Session::recover`] retries the rebuild. The
//! crash-injection harness behind this lives in
//! [`durable`](gsls_durable): a [`internals::FaultPlan`]-driven storage
//! double that drops fsyncs, tears final records and kills writes at a
//! chosen byte, driving the reopen-equals-rebuild property tests.
//!
//! ## Failure model & resource governance
//!
//! Every failure an application can see is typed, and none of them is
//! terminal. The taxonomy, from earliest to latest in a commit:
//!
//! | error | when | state after |
//! |-------|------|-------------|
//! | [`prelude::SessionError::Rejected`] | up-front validation / lint gate | untouched — nothing journaled |
//! | `Interrupted { phase: Admission, .. }` | predicted cost exceeds a [`prelude::CommitOpts`] cap | untouched — rejected before the WAL |
//! | `Interrupted { phase: Grounding \| ModelRefresh, .. }` | deadline, cancel, or budget trips mid-apply | rolled back — WAL record truncated, engine rebuilt at the previous epoch |
//! | [`prelude::SessionError::Grounding`] | the grounder's own clause budget | rolled back, same path |
//! | [`prelude::SessionError::Durable`] | storage failure on the WAL append | untouched in memory; the commit never happened |
//! | [`prelude::SessionError::Poisoned`] | the *rollback rebuild* failed, or a panic escaped mid-commit | reads serve the last consistent model; [`prelude::Session::recover`] unwinds and retries |
//!
//! The [`prelude::InterruptCause`] inside `Interrupted` says *why*
//! (`Cancelled`, `DeadlineExceeded`, `MemoryBudget`); the
//! [`prelude::InterruptPhase`] says *where*. The invariant: **a
//! timeout is a rolled-back transaction, never a poisoned session** —
//! the interrupt-at-every-phase and panic-injection sweeps in
//! `tests/governance.rs` hold this at every guard check a commit
//! performs.
//!
//! Governance is opt-in per operation. [`prelude::Session::commit_with`]
//! takes [`prelude::CommitOpts`] (wall-clock deadline, clause cap,
//! approximate memory budget over the term store + ground program +
//! indexes); [`prelude::Session::query_governed`] and
//! [`prelude::PreparedQuery::execute_governed`] take
//! [`prelude::QueryOpts`]. [`prelude::Session::interrupt_handle`]
//! returns a `Send + Sync` [`prelude::InterruptHandle`] any thread can
//! use to cancel the operation in flight; every hot loop in the engine
//! — grounding join rounds, fixpoint propagation, the parallel SCC
//! wavefront, query backtracking — polls the shared guard every ~1024
//! work units. An interrupted *query* is even gentler than a commit:
//! the stream just ends, the answers already yielded stay valid, and
//! [`prelude::QueryResult::interrupted`] reports the cause.
//!
//! ```
//! use global_sls::prelude::*;
//! use std::time::{Duration, Instant};
//!
//! let mut session = Session::from_source(
//!     "e(a, b). e(b, c). t(X, Y) :- e(X, Y). t(X, Z) :- e(X, Y), t(Y, Z).",
//! )?;
//!
//! // A deadline that already passed: the commit is interrupted and
//! // rolls back — same epoch, not poisoned, still writable.
//! session.begin()?;
//! session.assert_facts("e(c, d). e(d, a).")?;
//! let opts = CommitOpts {
//!     deadline: Some(Instant::now() - Duration::from_millis(1)),
//!     ..CommitOpts::default()
//! };
//! let err = session.commit_with(&opts).unwrap_err();
//! assert!(matches!(err, SessionError::Interrupted { .. }));
//! assert!(!session.is_poisoned());
//! assert_eq!(session.epoch(), 0);
//! assert_eq!(session.truth("?- e(c, d).")?, Truth::False);
//!
//! // Admission control: a batch *predicted* to exceed the clause cap
//! // is rejected before the write-ahead log would see it.
//! session.begin()?;
//! session.assert_facts("e(c, d). e(d, a).")?;
//! let err = session.commit_with(&CommitOpts { max_clauses: Some(1), ..CommitOpts::default() })
//!     .unwrap_err();
//! assert!(matches!(
//!     err,
//!     SessionError::Interrupted { phase: InterruptPhase::Admission, .. }
//! ));
//!
//! // Unlimited opts behave exactly like a plain commit …
//! session.begin()?;
//! session.assert_facts("e(c, d). e(d, a).")?;
//! session.commit_with(&CommitOpts::none())?;
//! assert_eq!(session.truth("?- t(a, a).")?, Truth::True);
//!
//! // … and any thread holding the handle can cancel the operation
//! // *in flight*. Each governed operation clears the flag when it
//! // starts, so a stale cancel never kills the next commit — and a
//! // consumed one doesn't either (see tests/governance.rs for the
//! // cross-thread version). The deterministic stand-in for "the guard
//! // tripped mid-commit" is the fuel knob:
//! let handle = session.interrupt_handle();
//! assert!(!handle.is_cancelled());
//! session.begin()?;
//! session.assert_facts("e(a, e0).")?;
//! let err = session
//!     .commit_with(&CommitOpts { fuel: Some(0), ..CommitOpts::default() })
//!     .unwrap_err();
//! assert!(matches!(
//!     err,
//!     SessionError::Interrupted { cause: InterruptCause::Cancelled, .. }
//! ));
//! assert!(!session.is_poisoned()); // rolled back; carry on
//! session.assert_facts("e(a, e0).")?; // the same batch, ungoverned
//! assert_eq!(session.truth("?- e(a, e0).")?, Truth::True);
//! # Ok::<(), SessionError>(())
//! ```
//!
//! ## Observability
//!
//! Every session carries an always-on [`obs`](gsls_obs) bundle: a
//! lock-cheap metrics registry (atomic counters + log-linear latency
//! histograms) and a bounded trace-event ring. The commit pipeline
//! records one histogram per phase (`commit.validate`,
//! `commit.admission`, `commit.journal`, `commit.ground`,
//! `commit.refresh`, `commit.index`, plus `commit.total`); the
//! grounder, fixpoint chains, WAL, scheduler, and query evaluator feed
//! counters (`ground.*`, `lfp.*`, `wal.*`, `par.*`, `query.*`); guard
//! trips surface both as `guard.trips.<phase>.<cause>` counters and as
//! ring events carrying the [`prelude::TripInfo`] resource readings.
//! [`prelude::Session::metrics`] snapshots everything consistently —
//! cheap enough to call per request — and
//! [`prelude::Session::recent_events`] drains the ring for post-hoc
//! reconstruction of a slow commit. The same numbers are inspectable
//! offline with the `gsls-obs` binary, and `BENCH_9.json` pins the
//! always-on overhead at ≤ 3% on a warm single-fact commit.
//!
//! ```
//! use global_sls::prelude::*;
//!
//! let mut session = Session::from_source("move(a, b). move(b, a).")?;
//! session.assert_facts("move(b, c).")?;
//! let q = session.query("?- move(a, X).")?;
//! assert_eq!(q.answers.len(), 1);
//!
//! let m = session.metrics();
//! assert_eq!(m.counter("commit.count"), Some(1));
//! assert_eq!(m.counter("query.executions"), Some(1));
//! assert!(m.counter("query.answers") >= Some(1));
//! // Per-phase latency histograms cover the whole commit pipeline.
//! let ground = m.histogram("commit.ground").unwrap();
//! assert_eq!(ground.count, 1);
//! assert!(ground.p99 >= ground.p50);
//! // The event ring holds the recent spans, oldest first.
//! let events = session.recent_events();
//! assert!(events.iter().any(|e| e.label == "commit.total"));
//! # Ok::<(), SessionError>(())
//! ```
//!
//! ## Serving
//!
//! [`serve`](gsls_serve) puts the whole stack on a socket: a std-only
//! TCP server ([`prelude::Server`]) multiplexing concurrent clients
//! onto named durable sessions, and a blocking [`prelude::Client`].
//! Every message is one CRC-framed record — `[len: u32 LE]
//! [crc32: u32 LE][payload]`, the WAL's own framing reused on the wire
//! — whose payload starts with a protocol version byte and a tag:
//!
//! | request | payload | reply |
//! |---------|---------|-------|
//! | `Ping` | — | `Pong` |
//! | `Open` | session name | `Opened{session, epoch}` |
//! | `Commit` | rules, asserts, retracts, budgets | `Committed{epoch, stats}` |
//! | `Query` | goal text, budgets | `Answers{truth, answers, undefined, interrupted}` |
//! | `Metrics` | — | `Text` (Prometheus exposition format) |
//! | `Events` | — | `Text` (JSON lines from the trace ring) |
//! | `Checkpoint` | — | `Text` |
//! | `Shutdown` | — | `Text` (server drains and stops) |
//!
//! Failures come back as `Error{kind, message}` with a coarse kind
//! (`Parse`, `Rejected`, `Interrupted`, `Busy`, …). Each request's
//! optional `deadline_ms` / `fuel` / `max_memory_bytes` /
//! `max_clauses` budgets map 1:1 onto [`prelude::CommitOpts`] and the
//! query guards, with deadlines measured from server receipt — so
//! end-to-end governance works exactly like in-process governance.
//!
//! **Group commit.** One writer thread exclusively owns each session
//! and drains a bounded commit queue: each drain takes the contiguous
//! run of queued batches, journals every batch to the WAL *unsynced*,
//! validates/governs/applies each under its own budget, then issues a
//! single covering fsync for the whole run
//! ([`prelude::Session::commit_group`]). Clients are answered only
//! after that fsync — fsync before *ack*, not before *apply* — so
//! under concurrent writers the fsync cost is amortized across the
//! group (watch `wal.group_records` / `wal.group_syncs` in the
//! scrape). A batch that fails its own validation or budget is
//! truncated off the WAL tail and rolled back; **only that client**
//! sees the error, and the rest of the group commits.
//!
//! **Disconnects.** A client vanishing mid-request can never poison a
//! session: a half-written frame fails its length/CRC check and never
//! reaches the engine, and a fully queued commit whose client is gone
//! commits normally (the reply just has nobody to go to). Queries run
//! on [`prelude::Snapshot`]s in a reader pool and never block the
//! writer. See `examples/serve_demo.rs` for the whole loop, and the
//! `gsls-serve` / `gsls-client` binaries for the CLI pair.
//!
//! ## Diagnostics & linting
//!
//! Every commit is gated by the static analyzer in
//! [`analysis`](gsls_analyze): safety/range-restriction (unbound head
//! variables, floundering negative-only variables, non-ground facts,
//! arity conflicts), stratification diagnostics with a named witness
//! cycle, dead-code analysis, and cost lints (cartesian products,
//! instantiation estimates). Safety violations are deny-by-default —
//! the batch is rejected with a [`prelude::CommitRejection`] carrying
//! *every* violation, **before** anything reaches the write-ahead log —
//! while the rest warn into [`prelude::Session::last_lint_report`].
//! Levels are per-lint via [`prelude::LintConfig`]; unstratified
//! programs are *allowed* by default (serving them is this engine's
//! purpose), and `LintConfig::permissive()` switches the gate off.
//!
//! ```
//! use global_sls::prelude::*;
//!
//! let mut session = Session::from_source("q(a).")?;
//! // `X` occurs only under negation: no computation rule can ground
//! // it, so the rule flounders — denied before it is journaled.
//! let err = session.add_rules("p(X) :- ~q(X).").unwrap_err();
//! match err {
//!     SessionError::Rejected(rejection) => {
//!         let diag = match rejection.first() {
//!             CommitError::Unsafe(d) => d,
//!             other => panic!("expected a lint rejection: {other}"),
//!         };
//!         assert_eq!(diag.lint, Lint::NegativeOnlyVar);
//!         assert_eq!(diag.severity, Severity::Error);
//!         assert!(diag.render().starts_with("error[negative-only-var]"));
//!     }
//!     other => panic!("expected a rejection: {other}"),
//! }
//! // Opting out admits the rule (it grounds over the active domain).
//! session.set_lint_config(LintConfig::permissive());
//! session.add_rules("p(X) :- ~q(X).")?;
//! assert_eq!(session.truth("?- p(a).")?, Truth::False);
//! # Ok::<(), SessionError>(())
//! ```
//!
//! The same passes run standalone — [`analysis`](gsls_analyze)'s
//! `analyze` over any [`prelude::Program`], or the `gsls-lint` binary
//! over `.lp` files and the workload generators (`check.sh` gates on
//! it).
//!
//! ## Batch vs. session
//!
//! The one-shot [`prelude::Solver`] facade (`parse_program` →
//! `Solver::new` → `query`) remains as a compatibility shim over the
//! same query machinery — see the `solver_compat` example. Migration is
//! mechanical: `Solver::new(program)` → [`prelude::Session::from_parts`],
//! `solver.query(..)` → [`prelude::Session::query`] (or `prepare` +
//! `execute` to reuse the compiled goal), and updates that used to mean
//! "rebuild the solver" become [`prelude::Session::assert_facts`] /
//! [`prelude::Session::retract_facts`] / [`prelude::Session::add_rules`]
//! commits. Programs with function symbols stay on the `Solver`'s
//! global-tree engine.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`lang`] | terms, atoms, clauses, unification, parser |
//! | [`analysis`] | static analyzer: safety, stratification, dead-code and cost lints |
//! | [`ground`] | grounding: join-plan compiler, fact store, incremental (session) grounder |
//! | [`wfs`] | bottom-up well-founded semantics; difference-driven fixpoint chains |
//! | [`resolution`] | SLD / SLDNF / SLS baselines |
//! | [`core`] | the `Session` engine, the `Solver` shim, global SLS-resolution trees |
//! | [`par`] | work-stealing runtime (parallel SCC evaluation, sharded grounding) |
//! | [`durable`] | write-ahead log, checkpoint/restore, crash-injection harness |
//! | [`obs`] | metrics registry, latency histograms, span tracing (std-only, dependency leaf) |
//! | [`serve`] | TCP server + client: wire protocol, group-commit write path, reader pool |
//! | [`workloads`] | experiment program generators |
//!
//! The [`prelude`] re-exports the user-facing surface; diagnostic and
//! paper-machinery types (global trees, deviant computation rules,
//! Herbrand transforms, the raw tabled engine) live in [`internals`].

pub use gsls_analyze as analysis;
pub use gsls_core as core;
pub use gsls_durable as durable;
pub use gsls_ground as ground;
pub use gsls_lang as lang;
pub use gsls_obs as obs;
pub use gsls_par as par;
pub use gsls_resolution as resolution;
pub use gsls_serve as serve;
pub use gsls_wfs as wfs;
pub use gsls_workloads as workloads;

/// Everything a typical user needs: the session API, the compatibility
/// solver, the object language, and the bottom-up semantics.
pub mod prelude {
    pub use gsls_analyze::{Diagnostic, Lint, LintConfig, LintLevel, LintReport, Severity};
    pub use gsls_core::{
        Answer, Answers, CommitError, CommitOpts, CommitRejection, CommitStats, Engine,
        InterruptCause, InterruptHandle, InterruptPhase, PreparedQuery, QueryOpts, QueryResult,
        Session, SessionError, Snapshot, SnapshotQuery, Solver, SolverError, Status, TripInfo,
        UpdateBatch,
    };
    pub use gsls_durable::{DurableOpts, StorageKind};
    pub use gsls_ground::{
        GroundProgram, Grounder, GrounderOpts, GroundingMode, IncrementalGrounder,
    };
    pub use gsls_lang::{
        parse_goal, parse_program, parse_query, parse_term, Atom, Clause, Goal, GovernOpts,
        Literal, Program, Sign, Subst, TermStore,
    };
    pub use gsls_obs::{HistogramSnapshot, MetricsSnapshot, Obs, TraceEvent};
    pub use gsls_resolution::{
        perfect_model, sld_solve, sldnf_solve, sls_solve, SldOpts, SldnfOpts, SldnfOutcome, SlsOpts,
    };
    pub use gsls_serve::{Client, ClientError, Server, ServerConfig};
    pub use gsls_wfs::{
        fitting_model, stable_models, vp_iteration, well_founded_model, Interp, Truth,
    };
}

/// The power-user / diagnostic surface: the paper's explicit tree
/// machinery, deviant computation rules, Herbrand transforms, program
/// analyses, and the raw memoized engine. Stable enough to use, but
/// not part of the typical serving path — which is why it is no longer
/// in the [`prelude`].
pub mod internals {
    pub use gsls_core::{
        deviant_evaluate, render_global, render_slp, DeviantOpts, GlobalAnswer, GlobalOpts,
        GlobalTree, GroundStatus, GroundTreeAnalysis, Guard, GuardBuilder, NegChild, NegNode,
        Ordinal, RuleKind, SccSolver, Selection, SlpNode, SlpNodeKind, SlpOpts, SlpTree,
        StatusFlags, TabledEngine, TabledStats, TreeNode, Verdict, TICK_INTERVAL,
    };
    pub use gsls_durable::{
        DurableError, DurableLog, FaultPlan, FaultyFile, FileStorage, Recovered, Wal, WalScan,
        WalStorage,
    };
    pub use gsls_ground::{
        augment_program, herbrand_universe, term_transform, AtomDepGraph, ClauseRef, Csr, DepGraph,
        GroundAtomId, GroundClause, GroundStats, GroundingError, HerbrandOpts, JoinStrategy,
        ProgramClass,
    };
    pub use gsls_wfs::{
        greatest_unfounded, is_stable_model, well_founded_model_rebuild,
        well_founded_model_scratch, well_founded_model_with_stats, well_founded_refresh,
        AlternatingStats, BitSet, IncrementalLfp, NegMode, Propagator,
    };
}
