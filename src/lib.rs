//! # global-sls — Global SLS-resolution for well-founded negation
//!
//! A full implementation of **Kenneth A. Ross, "A Procedural Semantics
//! for Well-Founded Negation in Logic Programs"** (PODS 1989; JLP 1992):
//! global trees, SLP-trees, ordinal levels, computation rules, the
//! effective memoized engine for function-free programs, the bottom-up
//! well-founded-model baselines, and the SLD/SLDNF/SLS comparison
//! procedures.
//!
//! ## Quickstart
//!
//! ```
//! use global_sls::prelude::*;
//!
//! let mut store = TermStore::new();
//! let program = parse_program(
//!     &mut store,
//!     "move(a, b). move(b, a). move(b, c). win(X) :- move(X, Y), ~win(Y).",
//! ).unwrap();
//!
//! let mut solver = Solver::new(program);
//! let goal = parse_goal(&mut store, "?- win(X).").unwrap();
//! let result = solver.query(&mut store, &goal, Engine::Tabled).unwrap();
//!
//! assert_eq!(result.truth, Truth::True);
//! assert_eq!(result.answers.len(), 1);          // win(b)
//! assert_eq!(result.undefined.len(), 0);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`lang`] | terms, atoms, clauses, unification, parser |
//! | [`ground`] | Herbrand machinery, grounding, stratification |
//! | [`wfs`] | bottom-up well-founded semantics, Fitting, stable models |
//! | [`resolution`] | SLD / SLDNF / SLS baselines |
//! | [`core`] | global SLS-resolution (trees, levels, tabled engine) |
//! | [`workloads`] | experiment program generators |

pub use gsls_core as core;
pub use gsls_ground as ground;
pub use gsls_lang as lang;
pub use gsls_resolution as resolution;
pub use gsls_wfs as wfs;
pub use gsls_workloads as workloads;

/// Everything a typical user needs.
pub mod prelude {
    pub use gsls_core::{
        deviant_evaluate, render_global, render_slp, DeviantOpts, Engine, GlobalOpts, GlobalTree,
        Ordinal, QueryResult, RuleKind, SlpOpts, SlpTree, Solver, SolverError, Status,
        TabledEngine, Verdict,
    };
    pub use gsls_ground::{
        augment_program, herbrand_universe, term_transform, AtomDepGraph, DepGraph, GroundProgram,
        Grounder, GrounderOpts, GroundingMode, HerbrandOpts,
    };
    pub use gsls_lang::{
        parse_goal, parse_program, parse_query, parse_term, Atom, Clause, Goal, Literal, Program,
        Sign, Subst, TermStore,
    };
    pub use gsls_resolution::{
        perfect_model, sld_solve, sldnf_solve, sls_solve, SldOpts, SldnfOpts, SldnfOutcome, SlsOpts,
    };
    pub use gsls_wfs::{
        fitting_model, stable_models, vp_iteration, well_founded_model, Interp, Truth,
    };
}
