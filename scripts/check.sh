#!/usr/bin/env bash
# Tooling gate: formatting + lints (with -D warnings) + build + tests.
# CI and pre-PR runs should both use this single entry point.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release --examples"
cargo build --release --examples

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --doc (the Session quickstart doctest is the API contract)"
cargo test -q --doc

echo "==> ground_smoke (join-plan vs naive-join differential)"
cargo run --release -p gsls-bench --bin ground_smoke

echo "==> gsls-lint gate (examples + workload generators deny-clean)"
cargo run --release -p gsls-bench --bin gsls-lint -- \
  examples/lp/win_game.lp examples/lp/reach.lp --workloads

echo "==> gsls-lint defect corpus (must be rejected, exit 1)"
if cargo run --release -p gsls-bench --bin gsls-lint -- examples/lp/defects.lp; then
  echo "gsls-lint failed to reject examples/lp/defects.lp" >&2
  exit 1
fi

echo "==> parallel diff suite at 2 threads (gsls-par determinism gate)"
GSLS_THREADS=2 cargo test --release -q --test parallel_diff

echo "==> session maintenance property at 2 threads (session ≡ rebuild)"
GSLS_THREADS=2 cargo test --release -q --test incremental session_

echo "==> durability recovery gate (crash-injection seed sweep)"
cargo test --release -q --test durability
for seed in 3 17 101; do
  echo "    GSLS_FAULT_SEED=$seed"
  GSLS_FAULT_SEED=$seed cargo test --release -q --test durability \
    fault_injected_crash_recovers_a_commit_prefix
done

echo "==> governance gate (interrupt-at-every-phase, panic-at-every-stage,"
echo "    cross-thread cancel) at 2 threads"
GSLS_THREADS=2 cargo test --release -q --test governance
for seed in 7 43 191; do
  echo "    GSLS_GOVERN_SEED=$seed"
  GSLS_GOVERN_SEED=$seed GSLS_THREADS=2 cargo test --release -q --test governance \
    cancel_interleaved_walk_matches_rebuild
done

echo "==> observability gate (counters, phase histograms, bounded ring,"
echo "    trip forensics) at default and 2 threads"
cargo test --release -q --test observability
GSLS_THREADS=2 cargo test --release -q --test observability

echo "==> gsls-obs CLI smoke (commit + query must land in the registry)"
cargo run --release -p gsls-bench --bin gsls-obs -- \
  examples/lp/win_game.lp --assert "move(obs1, obs2)." --query "?- win(X)." --json \
  | grep -q '"commit.refresh"'

echo "==> observability overhead gate (instrumented commit <= 3% vs disabled)"
cargo run --release -p gsls-bench --bin perf_report -- --obs-gate

echo "==> server suite (framing fuzz, group commit, ungraceful clients,"
echo "    storm vs oracle) at 1 and 2 threads"
GSLS_THREADS=1 cargo test --release -q --test server
GSLS_THREADS=2 cargo test --release -q --test server

echo "==> gsls-serve/gsls-client live smoke (commit, query, scrape, shutdown)"
cargo build --release -p gsls-serve --bins
serve_dir="$(mktemp -d)"
serve_log="$serve_dir/server.log"
target/release/gsls-serve --addr 127.0.0.1:0 --data-dir "$serve_dir/data" \
  >"$serve_log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$serve_dir"' EXIT
serve_addr=""
for _ in $(seq 1 100); do
  serve_addr="$(sed -n 's/^gsls-serve listening on //p' "$serve_log" | head -n1)"
  [ -n "$serve_addr" ] && break
  kill -0 "$serve_pid" 2>/dev/null || { cat "$serve_log" >&2; exit 1; }
  sleep 0.1
done
[ -n "$serve_addr" ] || { echo "gsls-serve never reported its address" >&2; exit 1; }
client() { target/release/gsls-client --addr "$serve_addr" "$@"; }
client commit "move(a, b). move(b, a). win(X) :- move(X, Y), ~win(Y)."
client assert "move(b, c)."
client query "?- win(X)." | grep -q "true"
client metrics | grep -q "^gsls_wal_group_syncs"
client shutdown
wait "$serve_pid"
trap - EXIT
rm -rf "$serve_dir"

echo "check.sh: all gates passed"
